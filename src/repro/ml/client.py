"""Federated-learning client: local training on one device shard."""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.data.avazu import DeviceDataset
from repro.ml.backends import SERVER_BACKEND, NumericBackend
from repro.ml.fedavg import ModelUpdate
from repro.ml.model import LogisticRegressionModel


class FLClient:
    """Runs the paper's local-training loop for one device.

    Parameters
    ----------
    dataset:
        The device's local shard (never leaves the client, per FL).
    feature_dim:
        Model dimensionality, must match the shard's encoder.
    backend:
        Numeric backend — ``SERVER_BACKEND`` when this client is emulated
        by the logical simulation, ``DEVICE_BACKEND`` when it represents a
        physical phone.
    epochs / learning_rate / batch_size:
        Local-SGD recipe (paper defaults: 10 epochs, lr 1e-3).
    rng:
        Shuffling source; pass a seeded generator for reproducibility.
    """

    def __init__(
        self,
        dataset: DeviceDataset,
        feature_dim: int,
        backend: NumericBackend = SERVER_BACKEND,
        epochs: int = 10,
        learning_rate: float = 1e-3,
        batch_size: int = 32,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        if epochs <= 0:
            raise ValueError("epochs must be positive")
        self.dataset = dataset
        self.feature_dim = int(feature_dim)
        self.backend = backend
        self.epochs = int(epochs)
        self.learning_rate = float(learning_rate)
        self.batch_size = int(batch_size)
        self.rng = rng

    @property
    def device_id(self) -> str:
        """Identifier of the device this client runs on."""
        return self.dataset.device_id

    @property
    def n_samples(self) -> int:
        """Local dataset size (the FedAvg weight)."""
        return self.dataset.n_samples

    def local_train(
        self, global_weights: np.ndarray, global_bias: float, round_index: int
    ) -> ModelUpdate:
        """Refine the global model on local data; return the update."""
        model = LogisticRegressionModel(self.feature_dim, self.backend)
        model.set_params(global_weights, global_bias)
        model.fit_local(
            self.dataset.features,
            self.dataset.labels,
            epochs=self.epochs,
            learning_rate=self.learning_rate,
            batch_size=self.batch_size,
            rng=self.rng,
        )
        weights, bias = model.get_params()
        return ModelUpdate(
            device_id=self.device_id,
            round_index=round_index,
            weights=weights,
            bias=bias,
            n_samples=self.n_samples,
            metadata={"backend": self.backend.name},
        )

    def evaluate(self, weights: np.ndarray, bias: float) -> dict[str, float]:
        """Local-shard metrics for a given global model."""
        model = LogisticRegressionModel(self.feature_dim, self.backend)
        model.set_params(weights, bias)
        return model.evaluate(self.dataset.features, self.dataset.labels)
