"""Evaluation metrics for binary CTR models."""

from __future__ import annotations

import numpy as np


def accuracy(labels: np.ndarray, probabilities: np.ndarray, threshold: float = 0.5) -> float:
    """Fraction of records whose thresholded probability matches the label."""
    labels = np.asarray(labels)
    probabilities = np.asarray(probabilities)
    if labels.shape != probabilities.shape:
        raise ValueError("labels and probabilities must have the same shape")
    if len(labels) == 0:
        raise ValueError("cannot compute accuracy of an empty batch")
    predictions = (probabilities >= threshold).astype(labels.dtype)
    return float((predictions == labels).mean())


def log_loss(labels: np.ndarray, probabilities: np.ndarray, eps: float = 1e-12) -> float:
    """Mean binary cross-entropy with probability clipping."""
    labels = np.asarray(labels, dtype=np.float64)
    probs = np.clip(np.asarray(probabilities, dtype=np.float64), eps, 1.0 - eps)
    if labels.shape != probs.shape:
        raise ValueError("labels and probabilities must have the same shape")
    if len(labels) == 0:
        raise ValueError("cannot compute log loss of an empty batch")
    losses = -(labels * np.log(probs) + (1.0 - labels) * np.log(1.0 - probs))
    return float(losses.mean())


def roc_auc(labels: np.ndarray, scores: np.ndarray) -> float:
    """Area under the ROC curve via the rank-sum (Mann-Whitney) identity.

    Ties receive average ranks.  Returns 0.5 when one class is absent,
    which keeps round-by-round evaluation robust on tiny shards.
    """
    labels = np.asarray(labels)
    scores = np.asarray(scores, dtype=np.float64)
    if labels.shape != scores.shape:
        raise ValueError("labels and scores must have the same shape")
    n_positive = int((labels == 1).sum())
    n_negative = int((labels == 0).sum())
    if n_positive == 0 or n_negative == 0:
        return 0.5
    order = np.argsort(scores, kind="mergesort")
    ranks = np.empty(len(scores), dtype=np.float64)
    ranks[order] = np.arange(1, len(scores) + 1)
    # Average ranks over tied score groups.
    sorted_scores = scores[order]
    i = 0
    while i < len(sorted_scores):
        j = i
        while j + 1 < len(sorted_scores) and sorted_scores[j + 1] == sorted_scores[i]:
            j += 1
        if j > i:
            ranks[order[i : j + 1]] = (i + 1 + j + 1) / 2.0
        i = j + 1
    positive_rank_sum = ranks[labels == 1].sum()
    u_statistic = positive_rank_sum - n_positive * (n_positive + 1) / 2.0
    return float(u_statistic / (n_positive * n_negative))
