"""Evaluation metrics for binary CTR models."""

from __future__ import annotations

import numpy as np


def accuracy(labels: np.ndarray, probabilities: np.ndarray, threshold: float = 0.5) -> float:
    """Fraction of records whose thresholded probability matches the label."""
    labels = np.asarray(labels)
    probabilities = np.asarray(probabilities)
    if labels.shape != probabilities.shape:
        raise ValueError("labels and probabilities must have the same shape")
    if len(labels) == 0:
        raise ValueError("cannot compute accuracy of an empty batch")
    predictions = (probabilities >= threshold).astype(labels.dtype)
    return float((predictions == labels).mean())


def log_loss(labels: np.ndarray, probabilities: np.ndarray, eps: float = 1e-12) -> float:
    """Mean binary cross-entropy with probability clipping."""
    labels = np.asarray(labels, dtype=np.float64)
    probs = np.clip(np.asarray(probabilities, dtype=np.float64), eps, 1.0 - eps)
    if labels.shape != probs.shape:
        raise ValueError("labels and probabilities must have the same shape")
    if len(labels) == 0:
        raise ValueError("cannot compute log loss of an empty batch")
    losses = -(labels * np.log(probs) + (1.0 - labels) * np.log(1.0 - probs))
    return float(losses.mean())


def block_metrics(labels: np.ndarray, probabilities: np.ndarray) -> list[dict[str, float]]:
    """Per-device metric dicts for stacked ``(n_devices, n_records)`` batches.

    Accuracy and log-loss reduce rowwise in one shot; AUC needs per-row
    tie handling and falls back to :func:`roc_auc` per device.  Each row's
    dict matches what :meth:`LogisticRegressionModel.evaluate` reports for
    that device alone.
    """
    labels = np.asarray(labels)
    probabilities = np.asarray(probabilities)
    if labels.shape != probabilities.shape or labels.ndim != 2:
        raise ValueError("labels and probabilities must be equal-shape 2-D arrays")
    if labels.shape[1] == 0:
        raise ValueError("cannot compute metrics of empty batches")
    predictions = (probabilities >= 0.5).astype(labels.dtype)
    accuracies = (predictions == labels).mean(axis=1)
    float_labels = labels.astype(np.float64)
    clipped = np.clip(probabilities.astype(np.float64), 1e-12, 1.0 - 1e-12)
    losses = -(
        float_labels * np.log(clipped) + (1.0 - float_labels) * np.log(1.0 - clipped)
    ).mean(axis=1)
    aucs = roc_auc_block(labels, probabilities)
    return [
        {
            "accuracy": float(accuracies[row]),
            "log_loss": float(losses[row]),
            "auc": float(aucs[row]),
        }
        for row in range(labels.shape[0])
    ]


def roc_auc_block(labels: np.ndarray, scores: np.ndarray) -> np.ndarray:
    """Rowwise :func:`roc_auc` over stacked ``(n_devices, n_records)`` batches.

    One ``argsort`` and a handful of accumulate passes replace the
    per-device Python tie loop; every row's value is bit-identical to the
    scalar function (average tie ranks are the same exact dyadic
    ``(i + j + 2) / 2`` midpoints, and the positive-rank sum reduces over
    the same compacted array).
    """
    labels = np.asarray(labels)
    scores = np.asarray(scores, dtype=np.float64)
    if labels.shape != scores.shape or labels.ndim != 2:
        raise ValueError("labels and scores must be equal-shape 2-D arrays")
    n_rows, n_records = scores.shape
    if n_records == 0:
        return np.full(n_rows, 0.5)
    positive = labels == 1
    n_positive = positive.sum(axis=1)
    n_negative = (labels == 0).sum(axis=1)
    order = np.argsort(scores, axis=1, kind="mergesort")
    sorted_scores = np.take_along_axis(scores, order, axis=1)
    indices = np.arange(n_records)
    # Index of each tie group's first/last member, per position.
    is_start = np.ones((n_rows, n_records), dtype=bool)
    is_start[:, 1:] = sorted_scores[:, 1:] != sorted_scores[:, :-1]
    group_start = np.maximum.accumulate(np.where(is_start, indices, 0), axis=1)
    is_end = np.ones((n_rows, n_records), dtype=bool)
    is_end[:, :-1] = is_start[:, 1:]
    group_end = np.minimum.accumulate(
        np.where(is_end, indices, n_records - 1)[:, ::-1], axis=1
    )[:, ::-1]
    averaged = (group_start + group_end + 2) / 2.0
    ranks = np.empty_like(scores)
    np.put_along_axis(ranks, order, averaged, axis=1)
    result = np.full(n_rows, 0.5)
    for row in np.nonzero((n_positive > 0) & (n_negative > 0))[0]:
        positive_rank_sum = ranks[row][positive[row]].sum()
        u_statistic = positive_rank_sum - n_positive[row] * (n_positive[row] + 1) / 2.0
        result[row] = u_statistic / (n_positive[row] * n_negative[row])
    return result


def roc_auc(labels: np.ndarray, scores: np.ndarray) -> float:
    """Area under the ROC curve via the rank-sum (Mann-Whitney) identity.

    Ties receive average ranks.  Returns 0.5 when one class is absent,
    which keeps round-by-round evaluation robust on tiny shards.
    """
    labels = np.asarray(labels)
    scores = np.asarray(scores, dtype=np.float64)
    if labels.shape != scores.shape:
        raise ValueError("labels and scores must have the same shape")
    n_positive = int((labels == 1).sum())
    n_negative = int((labels == 0).sum())
    if n_positive == 0 or n_negative == 0:
        return 0.5
    order = np.argsort(scores, kind="mergesort")
    ranks = np.empty(len(scores), dtype=np.float64)
    ranks[order] = np.arange(1, len(scores) + 1)
    # Average ranks over tied score groups.
    sorted_scores = scores[order]
    i = 0
    while i < len(sorted_scores):
        j = i
        while j + 1 < len(sorted_scores) and sorted_scores[j + 1] == sorted_scores[i]:
            j += 1
        if j > i:
            ranks[order[i : j + 1]] = (i + 1 + j + 1) / 2.0
        i = j + 1
    positive_rank_sum = ranks[labels == 1].sum()
    u_statistic = positive_rank_sum - n_positive * (n_positive + 1) / 2.0
    return float(u_statistic / (n_positive * n_negative))
