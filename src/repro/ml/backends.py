"""Numeric backends emulating differing operator implementations.

The paper's logical simulation trains with PyMNN operators while physical
devices run the C++ MNN operators shipped in business SDKs; "disparities in
hardware architecture and compilation optimizations ... can lead to
variations when executing the same operator across platforms" (§VI-B2).

A backend here pins down the floating-point story of one implementation:

* ``SERVER_BACKEND`` ("pymnn-server") — float64, natural accumulation
  order: the reference semantics of a server-side framework.
* ``DEVICE_BACKEND`` ("mnn-device") — float32 storage and arithmetic with
  reversed reduction order: mobile inference engines trade precision for
  speed and fuse reductions differently.

Both run the same algorithm, so accuracy differences stay tiny — which is
precisely the property Fig. 6 verifies end-to-end.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class NumericBackend:
    """Floating-point semantics of one operator implementation.

    Attributes
    ----------
    name:
        Human-readable identifier (appears in task/run metadata).
    dtype:
        Numpy dtype used for parameters and intermediate math.
    reverse_reduction:
        Whether per-record feature-weight sums reduce right-to-left.
        Changing reduction order changes rounding, not semantics — the
        classic cross-platform divergence.
    """

    name: str
    dtype: np.dtype
    reverse_reduction: bool = False

    def cast(self, array: np.ndarray) -> np.ndarray:
        """Bring an array into this backend's working precision."""
        return np.asarray(array, dtype=self.dtype)

    def gather_scores(self, weights: np.ndarray, bias: float, features: np.ndarray) -> np.ndarray:
        """Compute per-record logits ``sum_f w[features[:, f]] + bias``.

        ``features`` is an ``(n, n_fields)`` int array of hash indices.
        The reduction runs field-by-field in this backend's precision and
        order so rounding behaviour is faithful to the implementation.
        """
        working = self.cast(weights)
        gathered = working[features]  # (n, n_fields)
        if self.reverse_reduction:
            gathered = gathered[:, ::-1]
        scores = np.zeros(len(features), dtype=self.dtype)
        for column in range(gathered.shape[1]):
            scores = (scores + gathered[:, column]).astype(self.dtype)
        return (scores + self.dtype.type(bias)).astype(self.dtype)

    def gather_scores_block(
        self, weights: np.ndarray, biases: np.ndarray, features: np.ndarray
    ) -> np.ndarray:
        """Stacked :meth:`gather_scores` over a block of devices.

        ``weights`` is ``(n_devices, dim)``, ``biases`` ``(n_devices,)``
        and ``features`` ``(n_devices, n_records, n_fields)``; the result
        is ``(n_devices, n_records)``.  Every floating-point operation is
        elementwise over the device axis in the same per-device order as
        :meth:`gather_scores`, so each row is bit-identical to a scalar
        call with that device's weights.
        """
        n_devices, n_records, n_fields = features.shape
        working = self.cast(weights)
        gathered = np.take_along_axis(
            working, features.reshape(n_devices, n_records * n_fields), axis=1
        ).reshape(features.shape)
        if self.reverse_reduction:
            gathered = gathered[:, :, ::-1]
        scores = np.zeros((n_devices, n_records), dtype=self.dtype)
        for column in range(gathered.shape[2]):
            scores = (scores + gathered[:, :, column]).astype(self.dtype)
        cast_biases = np.asarray(biases).astype(self.dtype)
        return (scores + cast_biases[:, None]).astype(self.dtype)

    def sigmoid(self, z: np.ndarray) -> np.ndarray:
        """Numerically-stable logistic function in backend precision."""
        z = self.cast(z)
        out = np.empty_like(z)
        positive = z >= 0
        out[positive] = 1.0 / (1.0 + np.exp(-z[positive]))
        expz = np.exp(z[~positive])
        out[~positive] = expz / (1.0 + expz)
        return out.astype(self.dtype)


SERVER_BACKEND = NumericBackend(name="pymnn-server", dtype=np.dtype(np.float64))
DEVICE_BACKEND = NumericBackend(
    name="mnn-device", dtype=np.dtype(np.float32), reverse_reduction=True
)

_REGISTRY = {backend.name: backend for backend in (SERVER_BACKEND, DEVICE_BACKEND)}


def backend_by_name(name: str) -> NumericBackend:
    """Look up a registered backend; raises ``KeyError`` for unknown names."""
    if name not in _REGISTRY:
        raise KeyError(f"unknown backend {name!r}; known: {sorted(_REGISTRY)}")
    return _REGISTRY[name]
