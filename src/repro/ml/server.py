"""Synchronous FedAvg trainer — the ML-only reference loop.

The full platform executes federated rounds through tasks, DeviceFlow and
the cloud aggregation service.  This module provides the *benchmark local
distributed computing environment* of Fig. 6: a plain synchronous FedAvg
loop over clients, free of traffic shaping, against which hybrid runs are
compared.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Sequence

import numpy as np

from repro.data.avazu import DeviceDataset
from repro.ml.client import FLClient
from repro.ml.fedavg import fedavg
from repro.ml.model import LogisticRegressionModel


@dataclass
class RoundRecord:
    """Metrics captured after one aggregation round."""

    round_index: int
    n_updates: int
    n_samples: int
    train_loss: float
    train_accuracy: float
    test_loss: float
    test_accuracy: float
    test_auc: float


class SynchronousTrainer:
    """Round-synchronous FedAvg over a fixed client set.

    Parameters
    ----------
    clients:
        Participating :class:`~repro.ml.client.FLClient` objects.
    test_set:
        Held-out shard evaluated after every aggregation.
    feature_dim:
        Model dimensionality.
    """

    def __init__(
        self,
        clients: Sequence[FLClient],
        test_set: DeviceDataset,
        feature_dim: int,
    ) -> None:
        if not clients:
            raise ValueError("at least one client is required")
        self.clients = list(clients)
        self.test_set = test_set
        self.feature_dim = int(feature_dim)
        self.model = LogisticRegressionModel(self.feature_dim)
        self.history: list[RoundRecord] = []

    def run(self, rounds: int, participation: float = 1.0, rng: np.random.Generator | None = None) -> list[RoundRecord]:
        """Run ``rounds`` rounds; returns the per-round history.

        ``participation`` < 1 samples that fraction of clients uniformly
        each round (without replacement), the standard FL client sampling.
        """
        if rounds <= 0:
            raise ValueError("rounds must be positive")
        if not 0.0 < participation <= 1.0:
            raise ValueError("participation must be in (0, 1]")
        for round_index in range(1, rounds + 1):
            participants = self._select(participation, rng)
            weights, bias = self.model.get_params()
            updates = [client.local_train(weights, bias, round_index) for client in participants]
            new_weights, new_bias = fedavg(updates)
            self.model.set_params(new_weights, new_bias)
            self.history.append(self._record(round_index, updates, participants))
        return self.history

    def _select(self, participation: float, rng: np.random.Generator | None) -> list[FLClient]:
        if participation >= 1.0:
            return self.clients
        count = max(1, int(round(participation * len(self.clients))))
        if rng is None:
            return self.clients[:count]
        chosen = rng.choice(len(self.clients), size=count, replace=False)
        return [self.clients[i] for i in sorted(chosen)]

    def _record(self, round_index: int, updates, participants) -> RoundRecord:
        train_metrics = self._train_metrics(participants)
        test_metrics = self.model.evaluate(self.test_set.features, self.test_set.labels)
        return RoundRecord(
            round_index=round_index,
            n_updates=len(updates),
            n_samples=sum(update.n_samples for update in updates),
            train_loss=train_metrics["log_loss"],
            train_accuracy=train_metrics["accuracy"],
            test_loss=test_metrics["log_loss"],
            test_accuracy=test_metrics["accuracy"],
            test_auc=test_metrics["auc"],
        )

    def _train_metrics(self, participants: Sequence[FLClient]) -> dict[str, float]:
        """Aggregate-model metrics over the union of participant shards."""
        features = np.concatenate([client.dataset.features for client in participants])
        labels = np.concatenate([client.dataset.labels for client in participants])
        return self.model.evaluate(features, labels)
