"""Operator flows — the unit of computation SimDC tasks execute.

§III-A: a task is "a singular operator flow, composed of multiple operators
in a predetermined sequence", executed repeatedly (once per collaboration
round) by every simulated device.  Operators carry a declared ``work``
measure so execution tiers (logical actors, virtual phones) can convert
flow execution into simulated time via their speed models, while the
numeric effect of the flow runs eagerly in wall time.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from collections.abc import Sequence
from typing import Any

import numpy as np

from repro.data.avazu import DeviceDataset
from repro.ml.backends import SERVER_BACKEND, NumericBackend
from repro.ml.client import BlockTrainer
from repro.ml.fedavg import ModelUpdate
from repro.ml.metrics import block_metrics
from repro.ml.model import LogisticRegressionModel


@dataclass
class OperatorContext:
    """Mutable state threaded through one device's flow execution.

    Attributes
    ----------
    device_id / grade:
        Identity of the simulated device.
    dataset:
        The device's local shard.
    feature_dim:
        Model dimensionality.
    backend:
        Numeric backend of the executing tier.
    global_weights / global_bias:
        Parameters downloaded at the start of the round.
    round_index:
        Current collaboration round (1-based).
    rng:
        Seeded generator for local shuffling.
    outputs:
        Results produced by operators (e.g. ``outputs["update"]``).
    """

    device_id: str
    grade: str
    dataset: DeviceDataset
    feature_dim: int
    backend: NumericBackend = SERVER_BACKEND
    global_weights: np.ndarray | None = None
    global_bias: float = 0.0
    round_index: int = 1
    rng: np.random.Generator | None = None
    outputs: dict[str, Any] = field(default_factory=dict)


@dataclass
class BlockOperatorContext:
    """Mutable state threaded through one *block's* vectorized execution.

    A block is one wave of the batched logical tier: every device in it
    shares the grade, backend and global model, so operators can act on
    stacked arrays instead of per-device objects.  Block-capable operators
    read and write:

    * ``outputs["weights"]`` / ``outputs["biases"]`` — the stacked
      ``(n_devices, feature_dim)`` / ``(n_devices,)`` working parameters;
    * ``outputs["update_weights"]`` / ``outputs["update_biases"]`` — the
      packaged per-device results (columnar stand-in for
      ``OperatorContext.outputs["update"]``);
    * ``outputs["local_metrics"]`` — per-device metric dicts in block order.
    """

    device_ids: list[str]
    grade: str
    datasets: list[DeviceDataset]
    feature_dim: int
    backend: NumericBackend = SERVER_BACKEND
    global_weights: np.ndarray | None = None
    global_bias: float = 0.0
    round_index: int = 1
    rngs: list[Optional[np.random.Generator]] | None = None
    outputs: dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if len(self.device_ids) != len(self.datasets):
            raise ValueError("device_ids and datasets must align")

    def __len__(self) -> int:
        return len(self.device_ids)


class Operator:
    """Base class of user-definable operators.

    Subclasses set :attr:`name`, declare :attr:`work` (abstract cost units;
    1.0 ~ one local training epoch over an average shard) and implement
    :meth:`apply`.  Operators that can also execute a whole wave of devices
    against stacked arrays additionally implement :meth:`apply_block` and
    set :attr:`supports_block`; flows whose operators all do so qualify for
    the logical tier's vectorized numeric fast path.
    """

    name: str = "operator"
    work: float = 0.0
    supports_block: bool = False

    def apply(self, context: OperatorContext) -> None:
        """Execute the operator's effect against the context."""
        raise NotImplementedError

    def apply_block(self, block: BlockOperatorContext) -> None:
        """Execute the operator against a whole block at once.

        Must be bit-identical, per device, to :meth:`apply` over the
        equivalent :class:`OperatorContext`.  Only called when
        :attr:`supports_block` is true.
        """
        raise NotImplementedError(f"{type(self).__name__} has no block implementation")

    def __repr__(self) -> str:
        return f"{type(self).__name__}(work={self.work})"


class DownloadModelOp(Operator):
    """Fetch the round's global model into the context.

    The actual bytes move through storage in the platform layer; at the
    operator level the parameters are assumed staged by the runner.
    """

    name = "download_model"
    work = 0.1
    supports_block = True

    def apply(self, context: OperatorContext) -> None:
        if context.global_weights is None:
            raise RuntimeError(
                f"device {context.device_id}: global model was not staged before the flow ran"
            )
        context.outputs["model"] = LogisticRegressionModel(context.feature_dim, context.backend)
        context.outputs["model"].set_params(context.global_weights, context.global_bias)

    def apply_block(self, block: BlockOperatorContext) -> None:
        if block.global_weights is None:
            raise RuntimeError(
                f"device {block.device_ids[0]}: global model was not staged before the flow ran"
            )
        weights = np.asarray(block.global_weights, dtype=np.float64)
        if weights.shape != (block.feature_dim,):
            raise ValueError(f"weights shape {weights.shape} != ({block.feature_dim},)")
        block.outputs["weights"] = np.tile(weights, (len(block), 1))
        block.outputs["biases"] = np.full(len(block), float(block.global_bias), dtype=np.float64)


class TrainOp(Operator):
    """Local SGD refinement (the paper's 10-epoch, lr 1e-3 recipe)."""

    name = "train"

    def __init__(self, epochs: int = 10, learning_rate: float = 1e-3, batch_size: int = 32) -> None:
        if epochs <= 0:
            raise ValueError("epochs must be positive")
        self.epochs = int(epochs)
        self.learning_rate = float(learning_rate)
        self.batch_size = int(batch_size)
        self.work = float(epochs)

    supports_block = True

    def apply(self, context: OperatorContext) -> None:
        model = context.outputs.get("model")
        if model is None:
            raise RuntimeError("TrainOp requires DownloadModelOp earlier in the flow")
        model.fit_local(
            context.dataset.features,
            context.dataset.labels,
            epochs=self.epochs,
            learning_rate=self.learning_rate,
            batch_size=self.batch_size,
            rng=context.rng,
        )

    def apply_block(self, block: BlockOperatorContext) -> None:
        weights = block.outputs.get("weights")
        if weights is None:
            raise RuntimeError("TrainOp requires DownloadModelOp earlier in the flow")
        trainer = BlockTrainer(
            block.feature_dim,
            block.backend,
            epochs=self.epochs,
            learning_rate=self.learning_rate,
            batch_size=self.batch_size,
        )
        block.outputs["weights"], block.outputs["biases"] = trainer.train(
            weights, block.outputs["biases"], block.datasets, block.rngs
        )


class EvalOp(Operator):
    """Evaluate the current model on the local shard."""

    name = "evaluate"
    work = 0.2
    supports_block = True

    def apply(self, context: OperatorContext) -> None:
        model = context.outputs.get("model")
        if model is None:
            raise RuntimeError("EvalOp requires DownloadModelOp earlier in the flow")
        context.outputs["local_metrics"] = model.evaluate(
            context.dataset.features, context.dataset.labels
        )

    def apply_block(self, block: BlockOperatorContext) -> None:
        weights = block.outputs.get("weights")
        if weights is None:
            raise RuntimeError("EvalOp requires DownloadModelOp earlier in the flow")
        biases = block.outputs["biases"]
        groups: dict[int, list[int]] = {}
        for position, dataset in enumerate(block.datasets):
            groups.setdefault(dataset.n_samples, []).append(position)
        results: list[dict[str, float] | None] = [None] * len(block)
        for positions in groups.values():
            features = np.stack([block.datasets[i].features for i in positions])
            labels = np.stack([block.datasets[i].labels for i in positions])
            scores = block.backend.gather_scores_block(
                weights[positions], biases[positions], features
            )
            probabilities = block.backend.sigmoid(scores).astype(np.float64)
            for position, row_metrics in zip(positions, block_metrics(labels, probabilities)):
                results[position] = row_metrics
        block.outputs["local_metrics"] = results


class UploadUpdateOp(Operator):
    """Package the trained parameters as a :class:`ModelUpdate`.

    The platform layer turns ``outputs["update"]`` into a storage upload
    plus a DeviceFlow message.
    """

    name = "upload_update"
    work = 0.1
    supports_block = True

    def apply(self, context: OperatorContext) -> None:
        model = context.outputs.get("model")
        if model is None:
            raise RuntimeError("UploadUpdateOp requires a trained model in the flow")
        weights, bias = model.get_params()
        context.outputs["update"] = ModelUpdate(
            device_id=context.device_id,
            round_index=context.round_index,
            weights=weights,
            bias=bias,
            n_samples=context.dataset.n_samples,
            metadata={"grade": context.grade, "backend": context.backend.name},
        )

    def apply_block(self, block: BlockOperatorContext) -> None:
        weights = block.outputs.get("weights")
        if weights is None:
            raise RuntimeError("UploadUpdateOp requires a trained model in the flow")
        # Columnar counterpart of outputs["update"]: stacked copies so later
        # operators mutating the working parameters can't corrupt uploads.
        block.outputs["update_weights"] = np.array(weights, dtype=np.float64, copy=True)
        block.outputs["update_biases"] = np.array(
            block.outputs["biases"], dtype=np.float64, copy=True
        )


class OperatorFlow:
    """An ordered operator sequence, executed once per round per device."""

    def __init__(self, operators: Sequence[Operator]) -> None:
        if not operators:
            raise ValueError("an operator flow needs at least one operator")
        for op in operators:
            if not isinstance(op, Operator):
                raise TypeError(f"flow items must be Operators, got {type(op).__name__}")
        self.operators = list(operators)

    def __len__(self) -> int:
        return len(self.operators)

    def __iter__(self):
        return iter(self.operators)

    @property
    def total_work(self) -> float:
        """Sum of operator work units — the tier cost models scale this."""
        return sum(op.work for op in self.operators)

    @property
    def supports_block(self) -> bool:
        """Whether every operator can execute stacked device blocks."""
        return all(op.supports_block for op in self.operators)

    def execute(self, context: OperatorContext) -> OperatorContext:
        """Run every operator in order against ``context``."""
        for op in self.operators:
            op.apply(context)
        return context

    def execute_block(self, block: BlockOperatorContext) -> BlockOperatorContext:
        """Run every operator in order against a stacked device block.

        Raises ``RuntimeError`` when an operator lacks a block
        implementation — callers gate on :attr:`supports_block` and fall
        back to per-device :meth:`execute` otherwise.
        """
        for op in self.operators:
            if not op.supports_block:
                raise RuntimeError(
                    f"operator {op.name!r} does not support block execution"
                )
            op.apply_block(block)
        return block

    def describe(self) -> list[str]:
        """Operator names in order (for task specs and monitoring)."""
        return [op.name for op in self.operators]


def standard_fl_flow(
    epochs: int = 10, learning_rate: float = 1e-3, batch_size: int = 32
) -> OperatorFlow:
    """The canonical federated-learning round: download→train→eval→upload."""
    return OperatorFlow(
        [
            DownloadModelOp(),
            TrainOp(epochs=epochs, learning_rate=learning_rate, batch_size=batch_size),
            EvalOp(),
            UploadUpdateOp(),
        ]
    )
