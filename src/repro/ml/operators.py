"""Operator flows — the unit of computation SimDC tasks execute.

§III-A: a task is "a singular operator flow, composed of multiple operators
in a predetermined sequence", executed repeatedly (once per collaboration
round) by every simulated device.  Operators carry a declared ``work``
measure so execution tiers (logical actors, virtual phones) can convert
flow execution into simulated time via their speed models, while the
numeric effect of the flow runs eagerly in wall time.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Optional, Sequence

import numpy as np

from repro.data.avazu import DeviceDataset
from repro.ml.backends import SERVER_BACKEND, NumericBackend
from repro.ml.fedavg import ModelUpdate
from repro.ml.model import LogisticRegressionModel


@dataclass
class OperatorContext:
    """Mutable state threaded through one device's flow execution.

    Attributes
    ----------
    device_id / grade:
        Identity of the simulated device.
    dataset:
        The device's local shard.
    feature_dim:
        Model dimensionality.
    backend:
        Numeric backend of the executing tier.
    global_weights / global_bias:
        Parameters downloaded at the start of the round.
    round_index:
        Current collaboration round (1-based).
    rng:
        Seeded generator for local shuffling.
    outputs:
        Results produced by operators (e.g. ``outputs["update"]``).
    """

    device_id: str
    grade: str
    dataset: DeviceDataset
    feature_dim: int
    backend: NumericBackend = SERVER_BACKEND
    global_weights: Optional[np.ndarray] = None
    global_bias: float = 0.0
    round_index: int = 1
    rng: Optional[np.random.Generator] = None
    outputs: dict[str, Any] = field(default_factory=dict)


class Operator:
    """Base class of user-definable operators.

    Subclasses set :attr:`name`, declare :attr:`work` (abstract cost units;
    1.0 ~ one local training epoch over an average shard) and implement
    :meth:`apply`.
    """

    name: str = "operator"
    work: float = 0.0

    def apply(self, context: OperatorContext) -> None:
        """Execute the operator's effect against the context."""
        raise NotImplementedError

    def __repr__(self) -> str:
        return f"{type(self).__name__}(work={self.work})"


class DownloadModelOp(Operator):
    """Fetch the round's global model into the context.

    The actual bytes move through storage in the platform layer; at the
    operator level the parameters are assumed staged by the runner.
    """

    name = "download_model"
    work = 0.1

    def apply(self, context: OperatorContext) -> None:
        if context.global_weights is None:
            raise RuntimeError(
                f"device {context.device_id}: global model was not staged before the flow ran"
            )
        context.outputs["model"] = LogisticRegressionModel(context.feature_dim, context.backend)
        context.outputs["model"].set_params(context.global_weights, context.global_bias)


class TrainOp(Operator):
    """Local SGD refinement (the paper's 10-epoch, lr 1e-3 recipe)."""

    name = "train"

    def __init__(self, epochs: int = 10, learning_rate: float = 1e-3, batch_size: int = 32) -> None:
        if epochs <= 0:
            raise ValueError("epochs must be positive")
        self.epochs = int(epochs)
        self.learning_rate = float(learning_rate)
        self.batch_size = int(batch_size)
        self.work = float(epochs)

    def apply(self, context: OperatorContext) -> None:
        model = context.outputs.get("model")
        if model is None:
            raise RuntimeError("TrainOp requires DownloadModelOp earlier in the flow")
        model.fit_local(
            context.dataset.features,
            context.dataset.labels,
            epochs=self.epochs,
            learning_rate=self.learning_rate,
            batch_size=self.batch_size,
            rng=context.rng,
        )


class EvalOp(Operator):
    """Evaluate the current model on the local shard."""

    name = "evaluate"
    work = 0.2

    def apply(self, context: OperatorContext) -> None:
        model = context.outputs.get("model")
        if model is None:
            raise RuntimeError("EvalOp requires DownloadModelOp earlier in the flow")
        context.outputs["local_metrics"] = model.evaluate(
            context.dataset.features, context.dataset.labels
        )


class UploadUpdateOp(Operator):
    """Package the trained parameters as a :class:`ModelUpdate`.

    The platform layer turns ``outputs["update"]`` into a storage upload
    plus a DeviceFlow message.
    """

    name = "upload_update"
    work = 0.1

    def apply(self, context: OperatorContext) -> None:
        model = context.outputs.get("model")
        if model is None:
            raise RuntimeError("UploadUpdateOp requires a trained model in the flow")
        weights, bias = model.get_params()
        context.outputs["update"] = ModelUpdate(
            device_id=context.device_id,
            round_index=context.round_index,
            weights=weights,
            bias=bias,
            n_samples=context.dataset.n_samples,
            metadata={"grade": context.grade, "backend": context.backend.name},
        )


class OperatorFlow:
    """An ordered operator sequence, executed once per round per device."""

    def __init__(self, operators: Sequence[Operator]) -> None:
        if not operators:
            raise ValueError("an operator flow needs at least one operator")
        for op in operators:
            if not isinstance(op, Operator):
                raise TypeError(f"flow items must be Operators, got {type(op).__name__}")
        self.operators = list(operators)

    def __len__(self) -> int:
        return len(self.operators)

    def __iter__(self):
        return iter(self.operators)

    @property
    def total_work(self) -> float:
        """Sum of operator work units — the tier cost models scale this."""
        return sum(op.work for op in self.operators)

    def execute(self, context: OperatorContext) -> OperatorContext:
        """Run every operator in order against ``context``."""
        for op in self.operators:
            op.apply(context)
        return context

    def describe(self) -> list[str]:
        """Operator names in order (for task specs and monitoring)."""
        return [op.name for op in self.operators]


def standard_fl_flow(
    epochs: int = 10, learning_rate: float = 1e-3, batch_size: int = 32
) -> OperatorFlow:
    """The canonical federated-learning round: download→train→eval→upload."""
    return OperatorFlow(
        [
            DownloadModelOp(),
            TrainOp(epochs=epochs, learning_rate=learning_rate, batch_size=batch_size),
            EvalOp(),
            UploadUpdateOp(),
        ]
    )
