"""Mini-batch SGD for hashed-feature logistic regression."""

from __future__ import annotations


import numpy as np

from repro.ml.backends import SERVER_BACKEND, NumericBackend


class SGD:
    """Stochastic gradient descent over multi-hot hashed features.

    Parameters
    ----------
    learning_rate:
        Step size (the paper uses 1e-3).
    l2:
        Weight-decay coefficient applied to the weight vector (not the
        intercept).
    batch_size:
        Mini-batch size; batches beyond the final full one keep the
        remainder (no records are dropped).
    """

    def __init__(self, learning_rate: float = 1e-3, l2: float = 0.0, batch_size: int = 32) -> None:
        if learning_rate <= 0:
            raise ValueError("learning_rate must be positive")
        if l2 < 0:
            raise ValueError("l2 must be >= 0")
        if batch_size <= 0:
            raise ValueError("batch_size must be positive")
        self.learning_rate = float(learning_rate)
        self.l2 = float(l2)
        self.batch_size = int(batch_size)

    def run_epoch(
        self,
        weights: np.ndarray,
        bias: float,
        features: np.ndarray,
        labels: np.ndarray,
        rng: np.random.Generator | None = None,
        backend: NumericBackend = SERVER_BACKEND,
    ) -> tuple[np.ndarray, float]:
        """One pass over the data; returns updated ``(weights, bias)``.

        The forward pass (scores, sigmoid) runs in the backend's precision
        so that server/device implementations diverge realistically, while
        the parameter update accumulates in float64 master weights — the
        standard mixed-precision training recipe.
        """
        if len(features) != len(labels):
            raise ValueError("features and labels must align")
        n_records = len(labels)
        weights = np.array(weights, dtype=np.float64, copy=True)
        bias = float(bias)
        order = np.arange(n_records) if rng is None else rng.permutation(n_records)
        for start in range(0, n_records, self.batch_size):
            batch = order[start : start + self.batch_size]
            batch_features = features[batch]
            batch_labels = labels[batch].astype(np.float64)
            scores = backend.gather_scores(weights, bias, batch_features)
            probabilities = backend.sigmoid(scores).astype(np.float64)
            errors = probabilities - batch_labels  # dL/dscore
            # Scatter-add gradients to the touched hash buckets.
            gradient = np.zeros_like(weights)
            np.add.at(gradient, batch_features.ravel(), np.repeat(errors, batch_features.shape[1]))
            gradient /= len(batch)
            if self.l2 > 0.0:
                gradient += self.l2 * weights
            weights -= self.learning_rate * gradient
            bias -= self.learning_rate * float(errors.mean())
        return weights, bias

    def run_epochs(
        self,
        weights: np.ndarray,
        bias: float,
        features: np.ndarray,
        labels: np.ndarray,
        epochs: int,
        rng: np.random.Generator | None = None,
        backend: NumericBackend = SERVER_BACKEND,
    ) -> tuple[np.ndarray, float]:
        """Run ``epochs`` sequential epochs (the paper's local loop of 10)."""
        if epochs <= 0:
            raise ValueError("epochs must be positive")
        for _ in range(epochs):
            weights, bias = self.run_epoch(weights, bias, features, labels, rng=rng, backend=backend)
        return weights, bias

    def run_epochs_block(
        self,
        weights: np.ndarray,
        biases: np.ndarray,
        features: np.ndarray,
        labels: np.ndarray,
        epochs: int,
        rngs: list[Optional[np.random.Generator]] | None = None,
        backend: NumericBackend = SERVER_BACKEND,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Train a stacked block of devices in lock-step.

        ``weights`` is ``(n_devices, dim)``, ``biases`` ``(n_devices,)``,
        ``features`` ``(n_devices, n_records, n_fields)`` and ``labels``
        ``(n_devices, n_records)`` — every device in the block holds the
        same number of records, which is what lets the whole mini-batch
        loop run as a handful of array operations per step instead of a
        Python loop per device.

        Device ``d``'s result is bit-identical to
        ``run_epochs(weights[d], biases[d], features[d], labels[d], ...,
        rng=rngs[d])``: shuffles come from the same per-device generators
        in the same order, the forward pass reduces field-by-field in the
        backend's precision exactly as the scalar path does, and the
        scatter-add accumulates each device's gradient contributions in
        the same element order (devices occupy disjoint slices of one flat
        gradient buffer).
        """
        if epochs <= 0:
            raise ValueError("epochs must be positive")
        if features.ndim != 3:
            raise ValueError("features must be 3-D (devices x records x fields)")
        if features.shape[:2] != labels.shape:
            raise ValueError("features and labels must align")
        n_devices, n_records, n_fields = features.shape
        weights = np.array(weights, dtype=np.float64, copy=True)
        biases = np.array(biases, dtype=np.float64, copy=True)
        if n_records == 0 or n_devices == 0:
            return weights, biases
        dim = weights.shape[1]
        row_offsets = (np.arange(n_devices, dtype=np.intp) * dim)[:, None]
        for _ in range(epochs):
            orders = (
                np.broadcast_to(np.arange(n_records), (n_devices, n_records))
                if rngs is None
                else np.stack(
                    [
                        rng.permutation(n_records) if rng is not None else np.arange(n_records)
                        for rng in rngs
                    ]
                )
            )
            for start in range(0, n_records, self.batch_size):
                batch = orders[:, start : start + self.batch_size]
                batch_features = np.take_along_axis(features, batch[:, :, None], axis=1)
                batch_labels = np.take_along_axis(labels, batch, axis=1).astype(np.float64)
                scores = backend.gather_scores_block(weights, biases, batch_features)
                probabilities = backend.sigmoid(scores).astype(np.float64)
                errors = probabilities - batch_labels  # (n_devices, batch)
                # One flat scatter-add; device d's contributions land in its
                # own dim-sized slice, in the scalar path's element order.
                gradient = np.zeros(n_devices * dim, dtype=np.float64)
                flat_indices = (batch_features.reshape(n_devices, -1) + row_offsets).ravel()
                np.add.at(gradient, flat_indices, np.repeat(errors, n_fields, axis=1).ravel())
                gradient = gradient.reshape(n_devices, dim)
                gradient /= batch.shape[1]
                if self.l2 > 0.0:
                    gradient += self.l2 * weights
                weights -= self.learning_rate * gradient
                biases -= self.learning_rate * errors.mean(axis=1)
        return weights, biases
