"""Mini-batch SGD for hashed-feature logistic regression."""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.ml.backends import SERVER_BACKEND, NumericBackend


class SGD:
    """Stochastic gradient descent over multi-hot hashed features.

    Parameters
    ----------
    learning_rate:
        Step size (the paper uses 1e-3).
    l2:
        Weight-decay coefficient applied to the weight vector (not the
        intercept).
    batch_size:
        Mini-batch size; batches beyond the final full one keep the
        remainder (no records are dropped).
    """

    def __init__(self, learning_rate: float = 1e-3, l2: float = 0.0, batch_size: int = 32) -> None:
        if learning_rate <= 0:
            raise ValueError("learning_rate must be positive")
        if l2 < 0:
            raise ValueError("l2 must be >= 0")
        if batch_size <= 0:
            raise ValueError("batch_size must be positive")
        self.learning_rate = float(learning_rate)
        self.l2 = float(l2)
        self.batch_size = int(batch_size)

    def run_epoch(
        self,
        weights: np.ndarray,
        bias: float,
        features: np.ndarray,
        labels: np.ndarray,
        rng: Optional[np.random.Generator] = None,
        backend: NumericBackend = SERVER_BACKEND,
    ) -> tuple[np.ndarray, float]:
        """One pass over the data; returns updated ``(weights, bias)``.

        The forward pass (scores, sigmoid) runs in the backend's precision
        so that server/device implementations diverge realistically, while
        the parameter update accumulates in float64 master weights — the
        standard mixed-precision training recipe.
        """
        if len(features) != len(labels):
            raise ValueError("features and labels must align")
        n_records = len(labels)
        weights = np.array(weights, dtype=np.float64, copy=True)
        bias = float(bias)
        if rng is None:
            order = np.arange(n_records)
        else:
            order = rng.permutation(n_records)
        for start in range(0, n_records, self.batch_size):
            batch = order[start : start + self.batch_size]
            batch_features = features[batch]
            batch_labels = labels[batch].astype(np.float64)
            scores = backend.gather_scores(weights, bias, batch_features)
            probabilities = backend.sigmoid(scores).astype(np.float64)
            errors = probabilities - batch_labels  # dL/dscore
            # Scatter-add gradients to the touched hash buckets.
            gradient = np.zeros_like(weights)
            np.add.at(gradient, batch_features.ravel(), np.repeat(errors, batch_features.shape[1]))
            gradient /= len(batch)
            if self.l2 > 0.0:
                gradient += self.l2 * weights
            weights -= self.learning_rate * gradient
            bias -= self.learning_rate * float(errors.mean())
        return weights, bias

    def run_epochs(
        self,
        weights: np.ndarray,
        bias: float,
        features: np.ndarray,
        labels: np.ndarray,
        epochs: int,
        rng: Optional[np.random.Generator] = None,
        backend: NumericBackend = SERVER_BACKEND,
    ) -> tuple[np.ndarray, float]:
        """Run ``epochs`` sequential epochs (the paper's local loop of 10)."""
        if epochs <= 0:
            raise ValueError("epochs must be positive")
        for _ in range(epochs):
            weights, bias = self.run_epoch(weights, bias, features, labels, rng=rng, backend=backend)
        return weights, bias
