"""Battery electrical model: instantaneous readings + energy accounting.

The sysfs nodes PhoneMgr reads (§IV-C) report *instantaneous* current in
microamps and voltage in microvolts; energy per stage is then reconstructed
cloud-side by integrating sampled current over time.  The model keeps an
exact internal integral too, so tests can bound the sampling error.
"""

from __future__ import annotations


import numpy as np


class BatteryModel:
    """State of charge, discharge accounting and noisy sensor readings.

    Parameters
    ----------
    capacity_mah:
        Pack capacity.
    nominal_voltage_mv:
        Voltage at mid charge; the terminal voltage sags linearly toward
        ~92% of nominal as the pack empties and with load.
    rng:
        Seeded generator for sensor noise.
    noise_fraction:
        Relative standard deviation of current readings (sensor ripple).
    """

    def __init__(
        self,
        capacity_mah: float,
        nominal_voltage_mv: float = 3850.0,
        rng: np.random.Generator | None = None,
        noise_fraction: float = 0.05,
    ) -> None:
        if capacity_mah <= 0:
            raise ValueError("capacity_mah must be positive")
        if nominal_voltage_mv <= 0:
            raise ValueError("nominal_voltage_mv must be positive")
        if not 0 <= noise_fraction < 1:
            raise ValueError("noise_fraction must be in [0, 1)")
        self.capacity_mah = float(capacity_mah)
        self.nominal_voltage_mv = float(nominal_voltage_mv)
        self.consumed_mah = 0.0
        self.noise_fraction = float(noise_fraction)
        self._rng = rng or np.random.default_rng(0)

    @property
    def state_of_charge(self) -> float:
        """Remaining fraction in ``[0, 1]``."""
        return max(0.0, 1.0 - self.consumed_mah / self.capacity_mah)

    def accumulate(self, current_ma: float, duration_s: float) -> float:
        """Integrate a constant draw; returns the mAh consumed."""
        if current_ma < 0:
            raise ValueError("current_ma must be >= 0 (discharge accounting)")
        if duration_s < 0:
            raise ValueError("duration_s must be >= 0")
        consumed = current_ma * duration_s / 3600.0
        self.consumed_mah += consumed
        return consumed

    def current_now_ua(self, mean_current_ma: float) -> int:
        """Instantaneous sysfs ``current_now`` reading in microamps.

        Negative by Android convention: most kernels report discharge
        current as a negative value — the post-processing in PhoneMgr must
        take the magnitude, exactly as real pipelines do.
        """
        if mean_current_ma < 0:
            raise ValueError("mean_current_ma must be >= 0")
        noisy = self._rng.normal(mean_current_ma, self.noise_fraction * mean_current_ma)
        return -int(round(max(0.0, noisy) * 1000.0))

    def voltage_now_uv(self) -> int:
        """Instantaneous sysfs ``voltage_now`` reading in microvolts.

        Sags by up to 8% of nominal as charge depletes, plus ~2 mV ripple.
        """
        sag = 0.08 * self.nominal_voltage_mv * (1.0 - self.state_of_charge)
        ripple = self._rng.normal(0.0, 2.0)
        return int(round((self.nominal_voltage_mv - sag + ripple) * 1000.0))
