"""APK lifecycle stages as measured in the paper's Table I."""

from __future__ import annotations

import enum
from dataclasses import dataclass


class ApkStage(enum.IntEnum):
    """The five measurement stages of one training session (§VI-B1).

    Stage 1 — clearing background tasks without running the APK;
    Stage 2 — launching the APK without starting training;
    Stage 3 — training using the APK;
    Stage 4 — post-training with the APK still active;
    Stage 5 — exiting the APK and clearing background tasks.
    """

    NO_APK = 1
    APK_LAUNCH = 2
    TRAINING = 3
    POST_TRAINING = 4
    APK_CLOSURE = 5

    @property
    def label(self) -> str:
        """Table I row label."""
        return {
            ApkStage.NO_APK: "no APK initiated",
            ApkStage.APK_LAUNCH: "APK launch",
            ApkStage.TRAINING: "Training",
            ApkStage.POST_TRAINING: "Post-training",
            ApkStage.APK_CLOSURE: "Closure of APK",
        }[self]


@dataclass
class TrainingApk:
    """The business APK embedding the on-device training SDK.

    "Client-side federated learning algorithms are typically integrated
    into specific business APKs" (§VI-B2) — the APK identity matters to
    PhoneMgr because every quoted ADB command addresses the training
    *process* by package name or pid.
    """

    package: str = "com.simdc.train"
    activity: str = ".MainActivity"
    size_bytes: int = 48 * 1024 * 1024
    version: str = "1.4.2"

    @property
    def component(self) -> str:
        """``am start``-style component name."""
        return f"{self.package}/{self.activity}"

    def __post_init__(self) -> None:
        if not self.package or "/" in self.package:
            raise ValueError(f"invalid package name {self.package!r}")
        if self.size_bytes <= 0:
            raise ValueError("size_bytes must be positive")
