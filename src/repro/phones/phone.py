"""A virtual Android phone with physically-plausible observable state.

Every quantity PhoneMgr measures — instantaneous battery current/voltage,
per-process CPU%, PSS memory, WLAN byte counters — is a deterministic
(seeded) function of the phone's APK lifecycle stage and the simulated
clock, so polling at any frequency yields coherent traces: CPU oscillates
batch-by-batch during training, memory ramps as the training set loads
(the Fig. 5 shape), and the battery integral reproduces Table I.
"""

from __future__ import annotations

import math
from collections.abc import Sequence

import numpy as np

from repro.phones.apk import ApkStage, TrainingApk
from repro.phones.battery import BatteryModel
from repro.phones.specs import PhoneSpec
from repro.simkernel import RandomStreams, Signal, Simulator

#: Control-plane bytes exchanged during a training stage on top of the
#: model upload (heartbeats, progress RPCs).  Together with the ~32.8 KB
#: serialized update this lands on Table I's 33.10 KB per round.
TRAINING_CONTROL_BYTES = 1084


class VirtualPhone:
    """One simulated handset in the physical devices cluster.

    Parameters
    ----------
    sim:
        Shared simulator (the clock driving all observable state).
    serial:
        ADB serial number.
    spec:
        Hardware description.
    streams:
        Deterministic random streams for sensor noise.
    is_msp:
        Whether the phone is a remote Mobile-Service-Platform device.
    """

    def __init__(
        self,
        sim: Simulator,
        serial: str,
        spec: PhoneSpec,
        streams: RandomStreams | None = None,
        is_msp: bool = False,
    ) -> None:
        self.sim = sim
        self.serial = serial
        self.spec = spec
        self.is_msp = is_msp
        streams = streams or RandomStreams(0)
        self._noise = streams.get(f"phone.{serial}.noise")
        self.battery = BatteryModel(
            spec.battery_mah,
            spec.nominal_voltage_mv,
            rng=streams.get(f"phone.{serial}.battery"),
        )
        self.stage: ApkStage | None = None
        self._stage_entered_at = sim.now
        self.stage_energy_mah: dict[ApkStage, float] = {}
        self.stage_durations: dict[ApkStage, float] = {}
        self.installed: dict[str, TrainingApk] = {}
        self.running_pid: int | None = None
        self.running_package: str | None = None
        self._pid_counter = 4000 + (hash(serial) % 997)
        self._training_started_at: float | None = None
        self._training_duration: float = 0.0
        self._training_upload_bytes: int = 0
        self._net_rx_base = 0
        self._net_tx_base = 0
        self.training_complete: Signal | None = None
        self.sessions_completed = 0

    # ------------------------------------------------------------------
    # lifecycle transitions (driven by ADB commands)
    # ------------------------------------------------------------------
    def _current_draw_ma(self) -> float:
        if self.stage is None:
            return self.spec.idle_current_ma
        return self.spec.stage_current(self.stage)

    def _enter_stage(self, stage: ApkStage | None, at: float | None = None) -> None:
        """Close the energy account of the old stage, open the new one.

        ``at`` overrides the transition timestamp (default: the simulated
        clock) — the batched phone tier replays a whole round's stage
        transitions from precomputed wave times without per-event callbacks.
        """
        now = self.sim.now if at is None else at
        elapsed = now - self._stage_entered_at
        if elapsed > 0 and self.stage is not None:
            consumed = self.battery.accumulate(self._current_draw_ma(), elapsed)
            self.stage_energy_mah[self.stage] = (
                self.stage_energy_mah.get(self.stage, 0.0) + consumed
            )
            self.stage_durations[self.stage] = (
                self.stage_durations.get(self.stage, 0.0) + elapsed
            )
        elif elapsed > 0:
            self.battery.accumulate(self.spec.idle_current_ma, elapsed)
        self.stage = stage
        self._stage_entered_at = now

    def clear_background(self) -> None:
        """Stage 1: background tasks cleared, training APK not running."""
        self.running_pid = None
        self.running_package = None
        self._enter_stage(ApkStage.NO_APK)

    def install_apk(self, apk: TrainingApk) -> None:
        """Install (or upgrade) the training APK."""
        self.installed[apk.package] = apk

    def launch_apk(self, package: str) -> int:
        """Stage 2: start the APK's main activity; returns the new pid."""
        if package not in self.installed:
            raise RuntimeError(f"{self.serial}: package {package!r} is not installed")
        self._pid_counter += 37
        self.running_pid = self._pid_counter
        self.running_package = package
        self._net_rx_base = 0
        self._net_tx_base = 0
        self._enter_stage(ApkStage.APK_LAUNCH)
        return self.running_pid

    def start_training(self, duration: float, upload_bytes: int) -> Signal:
        """Stage 3: run one on-device training round.

        Returns a signal fired when training completes (at which point the
        phone transitions itself to the post-training stage and the upload
        bytes land on the WLAN counters).
        """
        if self.running_pid is None:
            raise RuntimeError(f"{self.serial}: no running APK to train in")
        if duration <= 0:
            raise ValueError("duration must be positive")
        if upload_bytes < 0:
            raise ValueError("upload_bytes must be >= 0")
        self._training_started_at = self.sim.now
        self._training_duration = float(duration)
        self._training_upload_bytes = int(upload_bytes)
        self._enter_stage(ApkStage.TRAINING)
        self.training_complete = Signal(name=f"{self.serial}.training")
        self.sim.schedule(duration, self._finish_training)
        return self.training_complete

    def _finish_training(self) -> None:
        assert self.training_complete is not None
        if self.running_pid is None:
            # The APK was force-stopped mid-training (task aborted); the
            # session produced nothing, but waiters must still resume.
            if not self.training_complete.fired:
                self.training_complete.fire(self.serial)
            return
        self._net_tx_base += self._training_upload_bytes + TRAINING_CONTROL_BYTES // 2
        self._net_rx_base += TRAINING_CONTROL_BYTES - TRAINING_CONTROL_BYTES // 2
        self._enter_stage(ApkStage.POST_TRAINING)
        self.sessions_completed += 1
        self.training_complete.fire(self.serial)

    def replay_training_sessions(
        self, start_times: Sequence[float], duration: float, upload_bytes: int
    ) -> None:
        """Apply the state effects of a batch of back-to-back training runs.

        The wave-scheduled phone tier computes every session's start time
        up front (one cumsum per phone) and calls this once per round
        instead of driving :meth:`start_training` / ``_finish_training``
        through per-device events.  The resulting battery accounts, WLAN
        counters, stage bookkeeping and session counter are bit-identical
        to the event-driven sequence at the same timestamps: each entry
        enters TRAINING at ``t`` and POST_TRAINING at ``t + duration``
        (the same float add the kernel's ``now + delay`` scheduling does).
        """
        if duration <= 0:
            raise ValueError("duration must be positive")
        if upload_bytes < 0:
            raise ValueError("upload_bytes must be >= 0")
        if self.running_pid is None:
            raise RuntimeError(f"{self.serial}: no running APK to train in")
        starts = np.asarray(start_times, dtype=np.float64).tolist()
        if not starts:
            return
        duration = float(duration)
        upload_bytes = int(upload_bytes)
        # Close whatever stage the phone is in and enter the first session
        # through the generic accounting path ...
        self._enter_stage(ApkStage.TRAINING, at=starts[0])
        # ... then run the strict TRAINING/POST_TRAINING alternation with
        # the running sums held in locals.  Every addition happens in the
        # same order, on the same values, as per-event _enter_stage calls
        # would produce (elapsed is `(start + duration) - start`, NOT
        # `duration` — float subtraction does not invert addition), so the
        # battery and stage accounts stay bit-identical.
        training_draw = self.spec.stage_current(ApkStage.TRAINING)
        post_draw = self.spec.stage_current(ApkStage.POST_TRAINING)
        battery = self.battery
        consumed_total = battery.consumed_mah
        energy = self.stage_energy_mah
        stage_durations = self.stage_durations
        training_energy = energy.get(ApkStage.TRAINING, 0.0)
        training_time = stage_durations.get(ApkStage.TRAINING, 0.0)
        post_energy = energy.get(ApkStage.POST_TRAINING, 0.0)
        post_time = stage_durations.get(ApkStage.POST_TRAINING, 0.0)
        post_touched = False
        finish = starts[0]  # overwritten before first use below
        for index, start in enumerate(starts):
            if index:
                gap = start - finish
                if gap > 0:
                    consumed = post_draw * gap / 3600.0
                    consumed_total += consumed
                    post_energy += consumed
                    post_time += gap
                    post_touched = True
            finish = start + duration
            elapsed = finish - start
            if elapsed > 0:
                consumed = training_draw * elapsed / 3600.0
                consumed_total += consumed
                training_energy += consumed
                training_time += elapsed
        # Integer counters are order-free; apply the whole batch at once.
        self._net_tx_base += len(starts) * (upload_bytes + TRAINING_CONTROL_BYTES // 2)
        self._net_rx_base += len(starts) * (TRAINING_CONTROL_BYTES - TRAINING_CONTROL_BYTES // 2)
        battery.consumed_mah = consumed_total
        energy[ApkStage.TRAINING] = training_energy
        stage_durations[ApkStage.TRAINING] = training_time
        if post_touched:
            energy[ApkStage.POST_TRAINING] = post_energy
            stage_durations[ApkStage.POST_TRAINING] = post_time
        self.sessions_completed += len(starts)
        self._training_started_at = starts[-1]
        self._training_duration = duration
        self._training_upload_bytes = upload_bytes
        self.stage = ApkStage.POST_TRAINING
        self._stage_entered_at = finish

    def stop_apk(self) -> None:
        """Stage 5: force-stop the APK and clear background tasks."""
        self._enter_stage(ApkStage.APK_CLOSURE)
        self.running_pid = None
        self.running_package = None

    def set_idle(self) -> None:
        """Leave the measurement session entirely (screen-off idle)."""
        self._enter_stage(None)

    # ------------------------------------------------------------------
    # observable sensors (what the ADB commands read)
    # ------------------------------------------------------------------
    def current_now_ua(self) -> int:
        """Instantaneous battery current (µA, negative = discharging)."""
        return self.battery.current_now_ua(self._current_draw_ma())

    def voltage_now_uv(self) -> int:
        """Instantaneous battery voltage (µV)."""
        return self.battery.voltage_now_uv()

    def pgrep(self, name: str) -> int | None:
        """Pid of the process matching ``name``, if running."""
        if self.running_package is not None and name in self.running_package:
            return self.running_pid
        return None

    def cpu_percent(self, pid: int) -> float:
        """Per-process CPU utilisation as ``top`` would report it.

        During training the trace oscillates with the mini-batch cycle
        (Fig. 5 shows ~0-14%); launch and post-training stages hover low.
        """
        if pid != self.running_pid or self.stage is None:
            return 0.0
        if self.stage is ApkStage.TRAINING:
            t = self.sim.now - (self._training_started_at or self.sim.now)
            wave = 8.0 + 4.0 * math.sin(2.0 * math.pi * t / 20.0)
            value = wave + self._noise.normal(0.0, 1.2)
            return float(min(15.0, max(0.3, value)))
        if self.stage in (ApkStage.APK_LAUNCH, ApkStage.POST_TRAINING):
            return float(max(0.1, 3.0 + self._noise.normal(0.0, 1.0)))
        return float(max(0.0, 1.0 + self._noise.normal(0.0, 0.5)))

    def memory_pss_kb(self, package: str) -> int:
        """Proportional-set-size of the training process in kB.

        Ramps from ~10 MB at launch toward ~50 MB as training data and
        the optimiser state load, then plateaus (the Fig. 5 shape).
        """
        if package != self.running_package or self.stage is None:
            return 0
        base_kb = 10 * 1024
        if self.stage is ApkStage.APK_LAUNCH:
            value = base_kb + self._noise.normal(0.0, 300.0)
        elif self.stage is ApkStage.TRAINING:
            t = self.sim.now - (self._training_started_at or self.sim.now)
            progress = min(1.0, t / max(1e-9, 0.6 * self._training_duration))
            value = base_kb + progress * 40 * 1024 + self._noise.normal(0.0, 500.0)
        elif self.stage is ApkStage.POST_TRAINING:
            value = base_kb + 25 * 1024 + self._noise.normal(0.0, 500.0)
        else:
            value = base_kb * 0.5
        return int(max(1024, value))

    def net_dev_bytes(self, pid: int) -> tuple[int, int]:
        """Cumulative WLAN (rx, tx) bytes attributed to ``pid``.

        Mid-training the counters drip control traffic linearly; the model
        upload lands when training finishes.
        """
        if pid != self.running_pid:
            return (0, 0)
        rx = self._net_rx_base
        tx = self._net_tx_base
        if self.stage is ApkStage.TRAINING and self._training_started_at is not None:
            progress = min(
                1.0, (self.sim.now - self._training_started_at) / max(1e-9, self._training_duration)
            )
            drip = int(progress * TRAINING_CONTROL_BYTES)
            rx += drip - drip // 2
            tx += drip // 2
        return (rx, tx)

    # ------------------------------------------------------------------
    def exact_stage_energy(self, stage: ApkStage) -> float:
        """Ground-truth mAh consumed in ``stage`` (for measurement tests)."""
        return self.stage_energy_mah.get(stage, 0.0)

    def __repr__(self) -> str:
        tier = "msp" if self.is_msp else "local"
        return f"VirtualPhone({self.serial!r}, {self.spec.model}, {self.spec.grade}, {tier})"
