"""Mobile Service Platform: the remote phone pool.

The paper's physical cluster combines local phones with "remote phones
provided by the Mobile Service Platform (MSP)" — 13 High + 7 Low devices
in the default experimental setup.  Remote phones behave identically but
every control command pays an extra round-trip latency, and devices may be
temporarily unavailable (leased to other tenants of the platform).
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.phones.adb import SimulatedAdb
from repro.phones.phone import VirtualPhone
from repro.phones.specs import DEFAULT_MSP_FLEET, PhoneSpec
from repro.simkernel import RandomStreams, Simulator


class MobileServicePlatform:
    """Provisioning facade for remote MSP phones.

    Parameters
    ----------
    sim / adb / streams:
        Shared simulation plumbing.
    specs:
        Hardware of the remote fleet (defaults to the paper's 13 High +
        7 Low devices).
    control_latency:
        Extra seconds per remote ADB control command.
    availability:
        Probability a phone is free when provisioning is attempted.
    """

    def __init__(
        self,
        sim: Simulator,
        adb: SimulatedAdb,
        specs: Sequence[PhoneSpec] = DEFAULT_MSP_FLEET,
        streams: RandomStreams | None = None,
        control_latency: float = 0.8,
        availability: float = 1.0,
    ) -> None:
        if control_latency < 0:
            raise ValueError("control_latency must be >= 0")
        if not 0.0 <= availability <= 1.0:
            raise ValueError("availability must be in [0, 1]")
        self.sim = sim
        self.adb = adb
        self.specs = list(specs)
        self.streams = streams or RandomStreams(0)
        self.control_latency = control_latency
        self.availability = availability
        self.phones: list[VirtualPhone] = []

    def provision(self) -> list[VirtualPhone]:
        """Attach available remote phones to the bridge; returns them.

        With ``availability < 1`` a seeded draw decides which devices the
        platform can actually lease right now.
        """
        if self.phones:
            raise RuntimeError("MSP fleet already provisioned")
        rng = self.streams.get("msp.availability")
        for index, spec in enumerate(self.specs):
            if self.availability < 1.0 and rng.random() > self.availability:
                continue
            serial = f"msp-{index:03d}"
            phone = VirtualPhone(self.sim, serial, spec, streams=self.streams, is_msp=True)
            self.adb.register(phone)
            self.phones.append(phone)
        return self.phones

    def release_all(self) -> None:
        """Return every leased phone to the platform."""
        for phone in self.phones:
            self.adb.unregister(phone.serial)
        self.phones.clear()

    def by_grade(self, grade: str) -> list[VirtualPhone]:
        """Provisioned remote phones of one grade."""
        return [phone for phone in self.phones if phone.spec.grade == grade]
