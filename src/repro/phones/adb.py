"""A simulated Android Debug Bridge.

"PhoneMgr performs various operations and interface management for
physical devices, primarily relying on ADB commands" (§IV-C).  This module
answers exactly the command set the paper quotes — battery sysfs reads,
``top``, ``pgrep``, ``dumpsys`` PSS queries and ``/proc/<pid>/net/dev`` —
with raw, realistically-formatted text: the paper stresses that "the
information collected typically contains other non-essential data,
requiring post-processing to extract valid data", and the fidelity of that
post-processing is part of what the reproduction exercises.
"""

from __future__ import annotations

import shlex

import numpy as np

from repro.phones.apk import TrainingApk
from repro.phones.phone import VirtualPhone


class AdbError(RuntimeError):
    """Raised for unknown serials, commands, or device-side failures."""


class SimulatedAdb:
    """Client-server ADB façade over a fleet of virtual phones."""

    def __init__(self) -> None:
        self._phones: dict[str, VirtualPhone] = {}

    # ------------------------------------------------------------------
    # fleet management
    # ------------------------------------------------------------------
    def register(self, phone: VirtualPhone) -> None:
        """Attach a phone to the bridge."""
        if phone.serial in self._phones:
            raise AdbError(f"serial {phone.serial!r} already attached")
        self._phones[phone.serial] = phone

    def unregister(self, serial: str) -> None:
        """Detach a phone."""
        if serial not in self._phones:
            raise AdbError(f"serial {serial!r} is not attached")
        del self._phones[serial]

    def phone(self, serial: str) -> VirtualPhone:
        """Resolve a serial (raises :class:`AdbError` if unknown)."""
        if serial not in self._phones:
            raise AdbError(f"device {serial!r} not found")
        return self._phones[serial]

    def devices(self) -> str:
        """``adb devices`` output."""
        lines = ["List of devices attached"]
        for serial in sorted(self._phones):
            lines.append(f"{serial}\tdevice")
        return "\n".join(lines) + "\n"

    # ------------------------------------------------------------------
    # high-level operations
    # ------------------------------------------------------------------
    def install(self, serial: str, apk: TrainingApk) -> str:
        """``adb install``: registers the APK on the device."""
        self.phone(serial).install_apk(apk)
        return "Performing Streamed Install\nSuccess\n"

    def push_duration(self, serial: str, n_bytes: int) -> float:
        """Seconds an ``adb push`` of ``n_bytes`` takes to this phone.

        Callers advance simulated time by this amount; MSP phones pay
        nothing extra here (their latency applies per *control* command).
        """
        if n_bytes < 0:
            raise AdbError("cannot push a negative payload")
        phone = self.phone(serial)
        return n_bytes / phone.spec.network_bandwidth_bps

    def push_durations(self, serial: str, byte_counts: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`push_duration` over an array of payload sizes.

        Element ``i`` equals ``push_duration(serial, byte_counts[i])``
        bit-for-bit (one float64 division either way) — the wave-scheduled
        phone tier stages a whole emulation queue with one array op instead
        of one bridge call per queued device.
        """
        byte_counts = np.asarray(byte_counts, dtype=np.float64)
        if byte_counts.size and float(byte_counts.min()) < 0:
            raise AdbError("cannot push a negative payload")
        phone = self.phone(serial)
        return byte_counts / phone.spec.network_bandwidth_bps

    # ------------------------------------------------------------------
    # shell
    # ------------------------------------------------------------------
    def shell(self, serial: str, command: str) -> str:
        """Execute an ``adb shell`` command; returns raw stdout text.

        Supports the paper's command set plus a trailing ``| grep X``
        filter (substring match, like busybox grep with a fixed pattern).
        """
        phone = self.phone(serial)
        command = command.strip()
        if not command:
            raise AdbError("empty shell command")
        if "|" in command:
            base, _, filter_part = command.partition("|")
            output = self._dispatch(phone, base.strip())
            filter_tokens = shlex.split(filter_part.strip())
            if not filter_tokens or filter_tokens[0] != "grep":
                raise AdbError(f"unsupported pipeline: {filter_part.strip()!r}")
            pattern = filter_tokens[-1]
            kept = [line for line in output.splitlines() if pattern in line]
            return "\n".join(kept) + ("\n" if kept else "")
        return self._dispatch(phone, command)

    # ------------------------------------------------------------------
    def _dispatch(self, phone: VirtualPhone, command: str) -> str:
        tokens = shlex.split(command)
        head = tokens[0]
        if head == "cat":
            return self._cat(phone, tokens)
        if head == "top":
            return self._top(phone, tokens)
        if head == "pgrep":
            return self._pgrep(phone, tokens)
        if head == "dumpsys":
            return self._dumpsys(phone, tokens)
        if head == "pm":
            return self._pm(phone, tokens)
        if head == "am":
            return self._am(phone, tokens)
        raise AdbError(f"/system/bin/sh: {head}: inaccessible or not found")

    def _cat(self, phone: VirtualPhone, tokens: list[str]) -> str:
        if len(tokens) != 2:
            raise AdbError("usage: cat <path>")
        path = tokens[1]
        if path == "/sys/class/power_supply/battery/current_now":
            return f"{phone.current_now_ua()}\n"
        if path == "/sys/class/power_supply/battery/voltage_now":
            return f"{phone.voltage_now_uv()}\n"
        if path.startswith("/proc/") and path.endswith("/net/dev"):
            pid_text = path.split("/")[2]
            try:
                pid = int(pid_text)
            except ValueError as exc:
                raise AdbError(f"cat: {path}: invalid pid") from exc
            return self._net_dev(phone, pid)
        raise AdbError(f"cat: {path}: No such file or directory")

    @staticmethod
    def _net_dev(phone: VirtualPhone, pid: int) -> str:
        rx, tx = phone.net_dev_bytes(pid)
        header = (
            "Inter-|   Receive                                                "
            "|  Transmit\n"
            " face |bytes    packets errs drop fifo frame compressed multicast"
            "|bytes    packets errs drop fifo colls carrier compressed\n"
        )
        lo = (
            f"    lo: {4096:>8} {12:>7}    0    0    0     0          0         0 "
            f"{4096:>8} {12:>7}    0    0    0     0       0          0\n"
        )
        rx_packets = max(1, rx // 1400)
        tx_packets = max(1, tx // 1400)
        wlan = (
            f" wlan0: {rx:>8} {rx_packets:>7}    0    0    0     0          0         0 "
            f"{tx:>8} {tx_packets:>7}    0    0    0     0       0          0\n"
        )
        return header + lo + wlan

    def _top(self, phone: VirtualPhone, tokens: list[str]) -> str:
        if "-p" not in tokens:
            raise AdbError("top: simulated bridge requires -p <pid>")
        pid = int(tokens[tokens.index("-p") + 1])
        cpu = phone.cpu_percent(pid)
        mem_kb = phone.memory_pss_kb(phone.running_package or "")
        mem_pct = 100.0 * mem_kb / (phone.spec.memory_gb * 1024 * 1024)
        header = (
            f"Tasks: 1 total,   1 running,   0 sleeping,   0 stopped,   0 zombie\n"
            f"  Mem:  {int(phone.spec.memory_gb * 1024 * 1024)}K total\n"
            "  PID USER         PR  NI VIRT  RES  SHR S[%CPU] %MEM     TIME+ ARGS\n"
        )
        if pid != phone.running_pid or phone.running_package is None:
            return header
        row = (
            f"{pid:>5} u0_a217      10 -10 {mem_kb + 9000:>4}K {mem_kb:>4}K {mem_kb // 3:>4}K "
            f"S {cpu:5.1f} {mem_pct:5.1f}   0:42.17 {phone.running_package}\n"
        )
        return header + row

    def _pgrep(self, phone: VirtualPhone, tokens: list[str]) -> str:
        if len(tokens) < 3 or tokens[1] != "-f":
            raise AdbError("usage: pgrep -f <pattern>")
        pid = phone.pgrep(tokens[2])
        return f"{pid}\n" if pid is not None else ""

    def _dumpsys(self, phone: VirtualPhone, tokens: list[str]) -> str:
        if len(tokens) < 2:
            raise AdbError("usage: dumpsys <service-or-package>")
        package = tokens[-1]
        pss = phone.memory_pss_kb(package)
        if pss == 0:
            return f"No process found for: {package}\n"
        # Realistic dumpsys meminfo shape: multiple PSS-bearing lines; the
        # post-processor must pick the TOTAL line.
        return (
            f"Applications Memory Usage (in Kilobytes):\n"
            f"Uptime: 88031337 Realtime: 88031337\n"
            f"** MEMINFO in pid {phone.running_pid} [{package}] **\n"
            f"          Java Heap:     {pss // 4}\n"
            f"        Native Heap:     {pss // 3}\n"
            f"         TOTAL PSS:     {pss}            TOTAL RSS:    {int(pss * 1.4)}\n"
            f"          SwapPss:          0\n"
        )

    def _pm(self, phone: VirtualPhone, tokens: list[str]) -> str:
        if len(tokens) >= 2 and tokens[1] == "clear":
            phone.clear_background()
            return "Success\n"
        raise AdbError(f"pm: unsupported sub-command {tokens[1:]!r}")

    def _am(self, phone: VirtualPhone, tokens: list[str]) -> str:
        if len(tokens) >= 2 and tokens[1] == "start":
            if "-n" not in tokens:
                raise AdbError("am start: missing -n <component>")
            component = tokens[tokens.index("-n") + 1]
            package = component.split("/")[0]
            phone.launch_apk(package)
            return f"Starting: Intent {{ cmp={component} }}\n"
        if len(tokens) >= 2 and tokens[1] == "force-stop":
            phone.stop_apk()
            return ""
        if len(tokens) >= 2 and tokens[1] == "broadcast":
            return "Broadcasting: Intent { act=... }\nBroadcast completed: result=0\n"
        raise AdbError(f"am: unsupported sub-command {tokens[1:]!r}")
