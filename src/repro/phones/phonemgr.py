"""PhoneMgr: task execution and performance measurement on phones.

§IV-C: PhoneMgr "first handles the downloading and distribution of data,
then employs Android Debug Bridge (ADB) commands to directly control the
execution process of phone devices".  It also distinguishes *Computing
Devices* (repeatedly emulating simulated devices) from *Benchmarking
Devices* (running the five-stage measured protocol of Table I), polls the
latter "at a certain frequency, organizes [the data] in real-time, and
uploads it to the cloud database".

Execution strategy (mirroring the logical tier's batched substrate):

* **Wave-scheduled computing phones** — by default (``batch=True``) a
  plan's emulation queues are laid out columnar: per-phone push / training
  / upload legs become one interleaved cumsum per phone, registered as
  ascending sequences in a :class:`~repro.simkernel.TimeoutPool` instead of
  one generator plus three heap events per emulated device.  Numeric flows
  execute as ONE stacked block across every device queued on the plan's
  phones (:meth:`~repro.ml.operators.OperatorFlow.execute_block`), and
  phone-side state (battery accounts, WLAN counters, session counts) is
  replayed from the precomputed wave times
  (:meth:`~repro.phones.phone.VirtualPhone.replay_training_sessions`).
  Outcomes, finish times and phone state are bit-identical to the
  generator path (``tests/test_phone_tier_equivalence.py``).
* **Shared benchmark sampler ticker** — the per-phone 1 Hz polling
  processes collapse into one recurring pooled tick per PhoneMgr that
  samples every active benchmarking phone, with timestamps and sample
  contents (including tie-breaking against stage boundaries) identical to
  the per-phone loops; samples read the virtual sensors directly
  (:func:`~repro.phones.metrics.direct_metric_sample`) instead of
  round-tripping ADB strings.
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right
from dataclasses import dataclass, field
from itertools import chain
from collections.abc import Callable, Generator
from typing import TYPE_CHECKING

import numpy as np

from repro.cloud.sink import OutcomeSink, coerce_sink
from repro.cluster.actor import DeviceAssignment, DeviceRoundOutcome
from repro.cluster.runner import ColumnarOutcomes, RoundResult, package_update
from repro.ml.backends import DEVICE_BACKEND, NumericBackend
from repro.ml.fedavg import ModelUpdate
from repro.ml.operators import BlockOperatorContext, OperatorContext, OperatorFlow
from repro.phones.adb import SimulatedAdb
from repro.phones.apk import ApkStage, TrainingApk
from repro.phones.cost import PhysicalCostModel
from repro.phones.metrics import (
    DeviceMetricSample,
    StageSummary,
    direct_metric_sample,
    integrate_energy_mah,
    parse_metric_sample,
    parse_pgrep_pid,
)
from repro.phones.phone import VirtualPhone
from repro.simkernel import AllOf, RandomStreams, RecurringTimeout, Signal, Simulator, Timeout, TimeoutPool

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.observability.tracing import Tracer


@dataclass
class PhoneAssignment:
    """The physical tier's share of one device grade for a task.

    Attributes
    ----------
    grade:
        Device grade.
    assignments:
        Computing devices emulated on phones (``N - q - x`` of them).
    benchmarking:
        Devices reserved for performance measurement (``q`` of them);
        "these devices are not reused as computation units in a single
        round" (§VI-B1).
    n_phones:
        Computing phones requested (the allocation model's ``m``).
    flow / feature_dim / backend / numeric:
        Execution parameters, mirroring the logical tier's plan.
    """

    grade: str
    assignments: list[DeviceAssignment]
    benchmarking: list[DeviceAssignment]
    n_phones: int
    flow: OperatorFlow
    feature_dim: int = 4096
    backend: NumericBackend = DEVICE_BACKEND
    numeric: bool = True

    def __post_init__(self) -> None:
        if self.n_phones < 0:
            raise ValueError("n_phones must be >= 0")
        if self.assignments and self.n_phones == 0:
            raise ValueError("computing devices require at least one phone")
        # Grade homogeneity, mirroring GradeExecutionPlan: the wave schedule
        # broadcasts one training duration per plan and the block executor
        # stacks every queued device, both of which assume a single grade.
        for assignment in chain(self.assignments, self.benchmarking):
            if assignment.grade != self.grade:
                raise ValueError(
                    f"assignment {assignment.device_id!r} has grade "
                    f"{assignment.grade!r} but the plan is for grade {self.grade!r}"
                )


@dataclass
class BenchmarkRecord:
    """Everything measured on one benchmarking phone in one round."""

    serial: str
    round_index: int
    samples: list[DeviceMetricSample] = field(default_factory=list)
    boundaries: list[tuple[ApkStage, float, float]] = field(default_factory=list)

    def stage_summaries(self) -> list[StageSummary]:
        """Table-I rows reconstructed from the sampled series.

        Samples are appended in time order (the polling tick plus the
        synchronous boundary snaps), so each stage window is located by
        bisection over the timestamps instead of rescanning every sample
        per stage — O(stages·log n + n) instead of O(stages·n), which
        matters at high poll rates.
        """
        timestamps = [sample.timestamp for sample in self.samples]
        summaries = []
        for stage, start, end in self.boundaries:
            lo = bisect_left(timestamps, start - 1e-9)
            hi = bisect_right(timestamps, end + 1e-9)
            window = self.samples[lo:hi]
            energy = integrate_energy_mah(window)
            comm_kb = (
                (window[-1].total_bytes - window[0].total_bytes) / 1024.0
                if len(window) >= 2
                else 0.0
            )
            summaries.append(
                StageSummary(
                    stage=int(stage),
                    label=stage.label,
                    power_mah=energy,
                    duration_min=(end - start) / 60.0,
                    comm_kb=comm_kb,
                )
            )
        return summaries


class _SampledPhone:
    """One benchmarking phone's registration with the shared sampler ticker."""

    __slots__ = ("phone", "record", "active", "stopped")

    def __init__(self, phone: VirtualPhone, record: BenchmarkRecord) -> None:
        self.phone = phone
        self.record = record
        self.active = True
        self.stopped = Signal(name=f"{phone.serial}.sampler")


class PhoneMgr:
    """Manages the physical devices cluster for one SimDC deployment.

    Parameters
    ----------
    sim / adb / streams:
        Shared simulation plumbing.
    phones:
        The full physical fleet (local + provisioned MSP phones).
    cost_model:
        beta/lambda/stage-window constants.
    apk:
        Training APK installed on participating phones.
    poll_interval:
        Benchmarking sampling period in seconds (1 Hz default).
    on_sample:
        Optional hook invoked per collected sample — the platform wires
        this to the cloud metrics database upload.
    batch:
        Use the wave-scheduled fast path (columnar emulation queues, the
        shared sampler ticker and direct sensor sampling).  ``False``
        restores the per-device generator processes; both modes produce
        bit-identical simulations.
    """

    def __init__(
        self,
        sim: Simulator,
        adb: SimulatedAdb,
        phones: list[VirtualPhone],
        cost_model: PhysicalCostModel | None = None,
        apk: TrainingApk | None = None,
        streams: RandomStreams | None = None,
        poll_interval: float = 1.0,
        on_sample: Callable[[DeviceMetricSample], None] | None = None,
        busy_registry: set[str] | None = None,
        batch: bool = True,
        tracer: Tracer | None = None,
    ) -> None:
        if poll_interval <= 0:
            raise ValueError("poll_interval must be positive")
        self.sim = sim
        self.adb = adb
        self.phones = list(phones)
        self.cost_model = cost_model or PhysicalCostModel()
        self.apk = apk or TrainingApk()
        self.streams = streams or RandomStreams(0)
        self.poll_interval = float(poll_interval)
        self.on_sample = on_sample
        self.batch = batch
        self.tracer = tracer
        self._task_id = "task"
        self.plans: list[PhoneAssignment] = []
        self.computing_phones: dict[str, list[VirtualPhone]] = {}
        self.benchmark_phones: dict[str, list[VirtualPhone]] = {}
        self.benchmark_records: list[BenchmarkRecord] = []
        self.rounds: list[RoundResult] = []
        # Reservation registry; pass a shared set so several PhoneMgr
        # sessions (one per concurrent task) never double-book a phone.
        self._busy: set[str] = busy_registry if busy_registry is not None else set()
        # Wave-schedule plumbing: pooled emulation legs, the shared sampler
        # ticker, and an epoch counter that voids pooled callbacks from a
        # task that was aborted mid-round.
        self._pool = TimeoutPool(sim, name="phone-tier")
        self._sampler_pool = TimeoutPool(sim, name="phone-sampler")
        self._sampler_entries: list[_SampledPhone] = []
        self._sampler_handle: RecurringTimeout | None = None
        self._round_barriers: list[Signal] = []
        self._epoch = 0

    # ------------------------------------------------------------------
    # device selection
    # ------------------------------------------------------------------
    def available_phones(self, grade: str) -> list[VirtualPhone]:
        """Idle phones of a grade, local devices first (cheaper control)."""
        free = [
            phone
            for phone in self.phones
            if phone.spec.grade == grade and phone.serial not in self._busy
        ]
        return sorted(free, key=lambda p: (p.is_msp, p.serial))

    def select_phones(self, grade: str, count: int) -> list[VirtualPhone]:
        """Reserve ``count`` phones of ``grade`` (raises if short)."""
        if count < 0:
            raise ValueError("count must be >= 0")
        candidates = self.available_phones(grade)
        if len(candidates) < count:
            raise RuntimeError(
                f"need {count} {grade}-grade phones, only {len(candidates)} available"
            )
        chosen = candidates[:count]
        for phone in chosen:
            self._busy.add(phone.serial)
        return chosen

    def release_phones(self, phones: list[VirtualPhone]) -> None:
        """Return phones to the pool."""
        for phone in phones:
            self._busy.discard(phone.serial)

    # ------------------------------------------------------------------
    # task lifecycle
    # ------------------------------------------------------------------
    def prepare(self, plans: list[PhoneAssignment], task_id: str = "task") -> Generator:
        """Select phones, install the APK, start the compute framework.

        Computing phones pay the framework-startup lambda here (once per
        task); benchmarking phones stay cold — their five-stage protocol
        starts from a cleared state every round.

        Selection is transactional: if a later plan cannot be satisfied
        (or an APK install fails), every phone already reserved for this
        task is released before the error propagates, so sibling tasks
        sharing the busy registry see no leaked reservations.
        """
        if self.plans:
            raise RuntimeError("PhoneMgr already has a prepared task")
        self._task_id = task_id
        self.plans = list(plans)
        startup_targets: list[tuple[VirtualPhone, str]] = []
        reserved: list[VirtualPhone] = []
        try:
            for plan in self.plans:
                computing = self.select_phones(plan.grade, plan.n_phones) if plan.assignments else []
                reserved.extend(computing)
                benchmarking = self.select_phones(plan.grade, len(plan.benchmarking))
                reserved.extend(benchmarking)
                self.computing_phones[plan.grade] = computing
                self.benchmark_phones[plan.grade] = benchmarking
                for phone in computing + benchmarking:
                    self.adb.install(phone.serial, self.apk)
                startup_targets.extend((phone, plan.grade) for phone in computing)
        except Exception:
            self.release_phones(reserved)
            self.plans = []
            self.computing_phones.clear()
            self.benchmark_phones.clear()
            raise
        # Framework startups launch only after *every* plan has selected
        # and installed — a mid-prepare failure must not leave orphaned
        # startup processes driving phones that were just released.
        startups = [
            self.sim.process(
                self._start_framework(phone, grade),
                name=f"{task_id}.{phone.serial}.startup",
            )
            for phone, grade in startup_targets
        ]
        if startups:
            yield AllOf(startups)

    def _start_framework(self, phone: VirtualPhone, grade: str) -> Generator:
        yield from self._control_latency(phone)
        self.adb.shell(phone.serial, f"pm clear {self.apk.package}")
        self.adb.shell(phone.serial, f"am start -n {self.apk.component}")
        yield Timeout(self.cost_model.startup_duration(grade))

    def _control_latency(self, phone: VirtualPhone) -> Generator:
        if phone.is_msp and self.cost_model.msp_control_latency > 0:
            yield Timeout(self.cost_model.msp_control_latency)

    # ------------------------------------------------------------------
    # round execution
    # ------------------------------------------------------------------
    def run_round(
        self,
        round_index: int,
        global_weights: np.ndarray | None,
        global_bias: float,
        model_bytes: int,
        sink: OutcomeSink | Callable[[DeviceRoundOutcome], None] | None = None,
    ) -> Generator:
        """Execute one round on computing + benchmarking phones.

        ``sink`` follows the :class:`~repro.cloud.sink.OutcomeSink`
        protocol exactly as on the logical tier: streaming sinks
        (``prefers_blocks = False``) get ``accept`` per device as results
        complete, block-preferring sinks get one ``accept_block`` per
        batched computing plan at its last completion time, and ``None``
        records columnar blocks with no delivery (the large phone-tier
        sweeps).  Benchmarking phones always stream ``accept`` — their
        five-stage protocol emits mid-round regardless of sink kind.
        The returned process resolves with a
        :class:`~repro.cluster.runner.RoundResult`.  A bare callable is
        deprecated (wrapped in a streaming ``CallbackSink`` with a
        ``DeprecationWarning``).
        """
        sink = coerce_sink(sink)
        stream = sink is not None and not getattr(sink, "prefers_blocks", True)
        result = RoundResult(round_index=round_index, started_at=self.sim.now)
        epoch = self._epoch

        def collect(outcome: DeviceRoundOutcome) -> None:
            result.outcomes.append(outcome)
            if sink is not None:
                sink.accept(outcome)

        processes = []
        batched_plans: list[PhoneAssignment] = []
        for plan in self.plans:
            # Per-plan choice mirroring the logical tier: time-only plans
            # always batch; numeric plans batch when every operator has a
            # vectorized block implementation, else they keep the
            # per-device generator path.
            if self.batch and (not plan.numeric or plan.flow.supports_block):
                batched_plans.append(plan)
            else:
                queues = self._partition(plan.assignments, max(1, plan.n_phones))
                for phone, queue in zip(self.computing_phones[plan.grade], queues):
                    processes.append(
                        self.sim.process(
                            self._run_computing_phone(
                                phone, queue, round_index, plan, global_weights, global_bias, model_bytes, collect
                            ),
                            name=f"{phone.serial}.round{round_index}",
                        )
                    )
            for phone, assignment in zip(self.benchmark_phones[plan.grade], plan.benchmarking):
                processes.append(
                    self.sim.process(
                        self._run_benchmark_phone(
                            phone, assignment, round_index, plan, global_weights, global_bias, model_bytes, collect
                        ),
                        name=f"{phone.serial}.bench{round_index}",
                    )
                )
        barriers: list = list(processes)
        if batched_plans:
            remaining = len(batched_plans)
            batched_done = Signal(name=f"phones.round{round_index}.batched-done")
            self._round_barriers.append(batched_done)

            def plan_done() -> None:
                nonlocal remaining
                remaining -= 1
                if remaining == 0:
                    if batched_done in self._round_barriers:
                        self._round_barriers.remove(batched_done)
                    batched_done.fire()

            for plan in batched_plans:
                self._register_batched_plan(
                    plan,
                    round_index,
                    global_weights,
                    global_bias,
                    model_bytes,
                    result,
                    collect if stream else None,
                    None if stream else sink,
                    plan_done,
                )
            barriers.append(batched_done)
        if barriers:
            yield AllOf(barriers)
        result.finished_at = self.sim.now
        # abort() mid-round releases the barrier early; mark the partial
        # result so consumers never mistake it for a completed round.
        result.aborted = epoch != self._epoch
        self.rounds.append(result)
        return result

    def teardown(self) -> Generator:
        """Stop APKs, idle every phone, release reservations."""
        for phones in list(self.computing_phones.values()) + list(self.benchmark_phones.values()):
            for phone in phones:
                yield from self._control_latency(phone)
                self.adb.shell(phone.serial, f"am force-stop {self.apk.package}")
                phone.set_idle()
                self.release_phones([phone])
        self._epoch += 1
        self.plans = []
        self.computing_phones.clear()
        self.benchmark_phones.clear()

    def abort(self) -> None:
        """Synchronous emergency teardown after a task failure.

        Skips control-latency niceties: force-stops any running APK,
        idles every reserved phone and returns it to the pool so sibling
        and queued tasks are unaffected by the crash.  Pending pooled wave
        callbacks from the crashed round are voided via the epoch counter.
        """
        for phones in list(self.computing_phones.values()) + list(self.benchmark_phones.values()):
            for phone in phones:
                if phone.running_pid is not None:
                    self.adb.shell(phone.serial, f"am force-stop {self.apk.package}")
                phone.set_idle()
                self.release_phones([phone])
        self._epoch += 1
        for entry in self._sampler_entries:
            if not entry.stopped.fired:
                entry.stopped.fire(entry.phone.serial)
        self._sampler_entries = []
        if self._sampler_handle is not None:
            self._sampler_handle.cancel()
            self._sampler_handle = None
        # The epoch bump voided the pooled callbacks that would have fired
        # these barriers; release any round process still blocked on one so
        # an aborted task's in-flight round unwinds instead of leaking.
        for barrier in self._round_barriers:
            if not barrier.fired:
                barrier.fire()
        self._round_barriers = []
        self.plans = []
        self.computing_phones.clear()
        self.benchmark_phones.clear()

    # ------------------------------------------------------------------
    # wave-scheduled computing phones (the batched fast path)
    # ------------------------------------------------------------------
    def _execute_numeric_block(
        self,
        plan: PhoneAssignment,
        round_index: int,
        global_weights: np.ndarray | None,
        global_bias: float,
    ) -> tuple[np.ndarray, np.ndarray, int]:
        """Run a numeric plan's flow as one stacked block over every device.

        Devices queued on the plan's phones share grade, backend and the
        round's global model, so the whole plan evaluates as a single
        :class:`BlockOperatorContext` — one stacked weight matrix refined
        by the flow's vectorized operators.  Flow execution consumes no
        simulated time (exactly like the generator path, where the math
        runs eagerly between two waits), and each device draws from its own
        named random stream (``phone-exec.{device_id}``, the same cached
        generator the per-device path consumes round after round), so block
        grouping cannot perturb results.

        Returns ``(update_weights, update_biases, payload_bytes)`` in
        assignment order; the weight array is empty when the flow produces
        no uploads.
        """
        for assignment in plan.assignments:
            if assignment.dataset is None:
                raise RuntimeError(
                    f"device {assignment.device_id} has no dataset but the run is numeric"
                )
        block = BlockOperatorContext(
            device_ids=[a.device_id for a in plan.assignments],
            grade=plan.grade,
            datasets=[a.dataset for a in plan.assignments],
            feature_dim=plan.feature_dim,
            backend=plan.backend,
            global_weights=global_weights,
            global_bias=global_bias,
            round_index=round_index,
            rngs=[self.streams.get(f"phone-exec.{a.device_id}") for a in plan.assignments],
        )
        plan.flow.execute_block(block)
        update_weights = block.outputs.get("update_weights")
        if update_weights is None:
            return np.empty((0, plan.feature_dim)), np.empty(0), 0
        update_biases = block.outputs["update_biases"]
        payload = ModelUpdate.wire_size(plan.feature_dim)
        return update_weights, update_biases, payload

    def _register_batched_plan(
        self,
        plan: PhoneAssignment,
        round_index: int,
        global_weights: np.ndarray | None,
        global_bias: float,
        model_bytes: int,
        result: RoundResult,
        collect: Callable[[DeviceRoundOutcome], None] | None,
        block_sink: OutcomeSink | None,
        plan_done: Callable[[], None],
    ) -> None:
        """Register one plan's whole emulation round in the timeout pool.

        Each computing phone's queue (round-robin: wave ``w`` on phone
        ``p`` holds ``assignments[w * n_phones + p]``) reduces to one
        interleaved cumsum ``((now + push) + training) + upload`` — the
        exact float-add chain the generator path's ``now + delay``
        scheduling produces, so finish times are bit-identical.  Pushes
        vary per device (dataset size), so the chain is per phone rather
        than per plan; phone state (battery, WLAN counters, session
        counts) is replayed from the same precomputed times once the
        phone's queue drains.

        With a ``collect`` callback each phone's sequence drains wave by
        wave through the pool (chronological across phones; ties fire in
        phone order, matching the lock-step generator interleave of the
        homogeneous default fleets).  Without one, the entire plan becomes
        a single pooled deadline at its last completion time plus a
        columnar block — no per-device events or objects at all; a
        ``block_sink`` receives that block via ``accept_block`` as it is
        recorded.
        """
        total = len(plan.assignments)
        if total == 0:
            plan_done()
            return
        phones = self.computing_phones[plan.grade]
        n_phones = len(phones)
        duration = self.cost_model.training_duration(plan.grade, plan.flow.total_work)
        update_weights: np.ndarray | None = None
        update_biases: np.ndarray | None = None
        upload_bytes = model_bytes
        if plan.numeric:
            update_weights, update_biases, payload = self._execute_numeric_block(
                plan, round_index, global_weights, global_bias
            )
            if len(update_weights):
                upload_bytes = payload
            else:
                update_weights = update_biases = None
        data_bytes = np.fromiter(
            (
                a.dataset.nbytes() if a.dataset is not None else 64 * a.n_samples
                for a in plan.assignments
            ),
            dtype=np.float64,
            count=total,
        )
        now = self.sim.now
        epoch = self._epoch
        finished = np.empty(total, dtype=np.float64)
        assignments = plan.assignments
        active_phones = [(p, phone) for p, phone in enumerate(phones) if p < total]
        replays: list[tuple[VirtualPhone, np.ndarray]] = []
        for p, phone in active_phones:
            pushes = self.adb.push_durations(phone.serial, data_bytes[p::n_phones] + model_bytes)
            count = len(pushes)
            steps = np.empty(3 * count + 1, dtype=np.float64)
            steps[0] = now
            steps[1::3] = pushes
            steps[2::3] = duration
            steps[3::3] = upload_bytes / phone.spec.network_bandwidth_bps
            times = np.cumsum(steps)
            finished[p::n_phones] = times[3::3]
            replays.append((phone, times[1::3]))

        def replay_phone_states() -> None:
            for phone, starts in replays:
                phone.replay_training_sessions(starts, duration, upload_bytes)

        if collect is None:

            def fire_all() -> None:
                if epoch != self._epoch:
                    return
                block = ColumnarOutcomes(
                    plan=plan,
                    round_index=round_index,
                    payload_bytes=upload_bytes,
                    finished_at=finished,
                    update_weights=update_weights,
                    update_biases=update_biases,
                )
                result.columnar.append(block)
                replay_phone_states()
                if block_sink is not None:
                    block_sink.accept_block(block)
                plan_done()

            self._pool.add_at(float(finished.max()), fire_all)
            return

        pending = len(active_phones)

        def make_fire(p: int, phone: VirtualPhone, starts: np.ndarray, count: int):
            def fire(lo: int, hi: int, _t: float) -> None:
                nonlocal pending
                if epoch != self._epoch:
                    return
                for k in range(lo, hi):
                    position = k * n_phones + p
                    assignment = assignments[position]
                    update = None
                    if update_weights is not None and update_biases is not None:
                        update = package_update(
                            plan,
                            round_index,
                            assignment,
                            update_weights[position],
                            update_biases[position],
                        )
                    collect(
                        DeviceRoundOutcome(
                            device_id=assignment.device_id,
                            grade=assignment.grade,
                            round_index=round_index,
                            n_samples=assignment.n_samples,
                            payload_bytes=upload_bytes,
                            update=update,
                            finished_at=float(finished[position]),
                        )
                    )
                if hi == count:
                    phone.replay_training_sessions(starts, duration, upload_bytes)
                    pending -= 1
                    if pending == 0:
                        plan_done()

            return fire

        for (p, phone), (_, starts) in zip(active_phones, replays):
            count = len(starts)
            self._pool.add_sequence(finished[p::n_phones], make_fire(p, phone, starts, count))

    # ------------------------------------------------------------------
    # legacy per-device generator path
    # ------------------------------------------------------------------
    def _run_computing_phone(
        self,
        phone: VirtualPhone,
        queue: list[DeviceAssignment],
        round_index: int,
        plan: PhoneAssignment,
        global_weights: np.ndarray | None,
        global_bias: float,
        model_bytes: int,
        on_outcome: Callable[[DeviceRoundOutcome], None],
    ) -> Generator:
        """Sequentially emulate the queued devices on one phone."""
        for assignment in queue:
            # `is not None`, not truthiness: a zero-record dataset must
            # stage its (zero) real bytes on both execution paths alike.
            data_bytes = (
                assignment.dataset.nbytes() if assignment.dataset is not None else 64 * assignment.n_samples
            )
            yield Timeout(self.adb.push_duration(phone.serial, data_bytes + model_bytes))
            duration = self.cost_model.training_duration(plan.grade, plan.flow.total_work)
            update = None
            payload = model_bytes
            if plan.numeric:
                update = self._execute_flow(assignment, round_index, plan, global_weights, global_bias)
                if update is not None:
                    payload = update.payload_bytes()
            done = phone.start_training(duration, upload_bytes=payload)
            yield done
            yield Timeout(payload / phone.spec.network_bandwidth_bps)
            on_outcome(
                DeviceRoundOutcome(
                    device_id=assignment.device_id,
                    grade=plan.grade,
                    round_index=round_index,
                    n_samples=assignment.n_samples,
                    payload_bytes=payload,
                    update=update,
                    finished_at=self.sim.now,
                )
            )

    # ------------------------------------------------------------------
    # benchmarking phones (Table I five-stage protocol)
    # ------------------------------------------------------------------
    def _run_benchmark_phone(
        self,
        phone: VirtualPhone,
        assignment: DeviceAssignment,
        round_index: int,
        plan: PhoneAssignment,
        global_weights: np.ndarray | None,
        global_bias: float,
        model_bytes: int,
        on_outcome: Callable[[DeviceRoundOutcome], None],
    ) -> Generator:
        """The measured five-stage protocol of Table I on one phone."""
        record = BenchmarkRecord(serial=phone.serial, round_index=round_index)
        self.benchmark_records.append(record)
        window = self.cost_model.stage_window
        if self.batch:
            entry = self._register_sampled_phone(phone, record)
            sampler: object = entry.stopped
        else:
            entry = None
            sampling = {"active": True}
            sampler = self.sim.process(
                self._sample_loop(phone, record, sampling), name=f"{phone.serial}.sampler"
            )

        def boundary(stage: ApkStage, start: float) -> None:
            # Snap a synchronous sample at the transition so per-stage
            # deltas (energy, communication) are anchored exactly at the
            # boundary instead of at the nearest polling tick.
            self._record_sample(phone, record)
            record.boundaries.append((stage, start, self.sim.now))
            if self.tracer is not None:
                # Benchmark phones stream identically in both execution
                # modes, so these spans are byte-identical batched/legacy.
                self.tracer.record_bench_stage(
                    self._task_id,
                    phone.serial,
                    assignment.device_id,
                    round_index,
                    stage.label,
                    start,
                    self.sim.now,
                )

        # Stage 1: clear background, APK not running.
        yield from self._control_latency(phone)
        self.adb.shell(phone.serial, f"pm clear {self.apk.package}")
        start = self.sim.now
        yield Timeout(window)
        boundary(ApkStage.NO_APK, start)

        # Stage 2: launch the APK, do not train yet.
        yield from self._control_latency(phone)
        self.adb.shell(phone.serial, f"am start -n {self.apk.component}")
        start = self.sim.now
        yield Timeout(window)
        boundary(ApkStage.APK_LAUNCH, start)

        # Stage 3: training.
        duration = self.cost_model.training_duration(plan.grade, plan.flow.total_work)
        update = None
        payload = model_bytes
        if plan.numeric:
            update = self._execute_flow(assignment, round_index, plan, global_weights, global_bias)
            if update is not None:
                payload = update.payload_bytes()
        start = self.sim.now
        done = phone.start_training(duration, upload_bytes=payload)
        yield done
        boundary(ApkStage.TRAINING, start)
        on_outcome(
            DeviceRoundOutcome(
                device_id=assignment.device_id,
                grade=plan.grade,
                round_index=round_index,
                n_samples=assignment.n_samples,
                payload_bytes=payload,
                update=update,
                finished_at=self.sim.now,
            )
        )

        # Stage 4: post-training, APK still in the foreground.
        start = self.sim.now
        yield Timeout(window)
        boundary(ApkStage.POST_TRAINING, start)

        # Stage 5: exit the APK and clear background tasks.
        yield from self._control_latency(phone)
        self.adb.shell(phone.serial, f"am force-stop {self.apk.package}")
        start = self.sim.now
        yield Timeout(window)
        boundary(ApkStage.APK_CLOSURE, start)
        if entry is not None:
            entry.active = False
        else:
            sampling["active"] = False
        phone.set_idle()
        # Both modes resume at the tick after deactivation: the legacy
        # sampler process exits there, the shared ticker fires ``stopped``.
        yield sampler

    # ------------------------------------------------------------------
    # benchmark sampling (shared ticker + legacy per-phone loop)
    # ------------------------------------------------------------------
    def _register_sampled_phone(self, phone: VirtualPhone, record: BenchmarkRecord) -> _SampledPhone:
        """Join the shared sampler ticker (starting it on first use)."""
        entry = _SampledPhone(phone, record)
        self._sampler_entries.append(entry)
        if self._sampler_handle is None:
            # First fire *now*: the per-phone loop's opening sample landed
            # at sampler-process start, the same timestamp as registration.
            self._sampler_handle = self._sampler_pool.add_recurring(
                self.poll_interval, self._sampler_tick, first_at=self.sim.now
            )
        return entry

    def _sampler_tick(self) -> None:
        """One shared tick: sample every active phone, in registration order.

        Deactivated phones get their ``stopped`` signal fired instead — the
        moment their dedicated sampler process would have observed the flag
        and exited.  The ticker cancels itself once nobody is registered,
        so no samples land between rounds (the Fig. 5 no-data windows).
        """
        survivors = []
        for entry in self._sampler_entries:
            if entry.active:
                self._record_sample(entry.phone, entry.record)
                survivors.append(entry)
            else:
                entry.stopped.fire(entry.phone.serial)
        self._sampler_entries = survivors
        if not survivors and self._sampler_handle is not None:
            self._sampler_handle.cancel()
            self._sampler_handle = None

    def _sample_loop(
        self, phone: VirtualPhone, record: BenchmarkRecord, sampling: dict
    ) -> Generator:
        """Poll the five quoted ADB commands at the configured frequency."""
        while sampling["active"]:
            self._record_sample(phone, record)
            yield Timeout(self.poll_interval)

    def _record_sample(self, phone: VirtualPhone, record: BenchmarkRecord) -> None:
        """Collect one sample and forward it to the upload hook.

        The batched mode reads the virtual sensors directly
        (:func:`direct_metric_sample` — bit-identical to the ADB text
        pipeline, including its parse round-trips); legacy mode issues the
        five raw ADB commands and post-processes their output.
        """
        sample = (
            direct_metric_sample(self.sim.now, phone, self.apk.package)
            if self.batch
            else self._sample_via_adb(phone)
        )
        record.samples.append(sample)
        if self.on_sample is not None:
            self.on_sample(sample)

    def _sample_via_adb(self, phone: VirtualPhone) -> DeviceMetricSample:
        """One sample via raw ADB commands and string post-processing."""
        package = self.apk.package
        current_raw = self.adb.shell(phone.serial, "cat /sys/class/power_supply/battery/current_now")
        voltage_raw = self.adb.shell(phone.serial, "cat /sys/class/power_supply/battery/voltage_now")
        pid_raw = self.adb.shell(phone.serial, f"pgrep -f {package}")
        pid = parse_pgrep_pid(pid_raw) or 0
        if pid:
            top_raw = self.adb.shell(phone.serial, f"top -b -n 1 -p {pid}")
            dumpsys_raw = self.adb.shell(phone.serial, f"dumpsys meminfo {package} | grep PSS")
            net_raw = self.adb.shell(phone.serial, f"cat /proc/{pid}/net/dev | grep wlan")
        else:
            top_raw, dumpsys_raw, net_raw = "", "", ""
        return parse_metric_sample(
            timestamp=self.sim.now,
            serial=phone.serial,
            current_raw=current_raw,
            voltage_raw=voltage_raw,
            top_raw=top_raw,
            pid=pid,
            dumpsys_raw=dumpsys_raw,
            net_dev_raw=net_raw,
        )

    def _execute_flow(
        self,
        assignment: DeviceAssignment,
        round_index: int,
        plan: PhoneAssignment,
        global_weights: np.ndarray | None,
        global_bias: float,
    ):
        if assignment.dataset is None:
            raise RuntimeError(
                f"device {assignment.device_id} has no dataset but the run is numeric"
            )
        context = OperatorContext(
            device_id=assignment.device_id,
            grade=plan.grade,
            dataset=assignment.dataset,
            feature_dim=plan.feature_dim,
            backend=plan.backend,
            global_weights=global_weights,
            global_bias=global_bias,
            round_index=round_index,
            rng=self.streams.get(f"phone-exec.{assignment.device_id}"),
        )
        plan.flow.execute(context)
        return context.outputs.get("update")

    @staticmethod
    def _partition(assignments: list[DeviceAssignment], n_phones: int) -> list[list[DeviceAssignment]]:
        queues: list[list[DeviceAssignment]] = [[] for _ in range(n_phones)]
        for index, assignment in enumerate(assignments):
            queues[index % n_phones].append(assignment)
        return queues
