"""PhoneMgr: task execution and performance measurement on phones.

§IV-C: PhoneMgr "first handles the downloading and distribution of data,
then employs Android Debug Bridge (ADB) commands to directly control the
execution process of phone devices".  It also distinguishes *Computing
Devices* (repeatedly emulating simulated devices) from *Benchmarking
Devices* (running the five-stage measured protocol of Table I), polls the
latter "at a certain frequency, organizes [the data] in real-time, and
uploads it to the cloud database".
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Generator, Optional

import numpy as np

from repro.cluster.actor import DeviceAssignment, DeviceRoundOutcome
from repro.ml.backends import DEVICE_BACKEND, NumericBackend
from repro.ml.operators import OperatorContext, OperatorFlow
from repro.phones.adb import SimulatedAdb
from repro.phones.apk import ApkStage, TrainingApk
from repro.phones.cost import PhysicalCostModel
from repro.phones.metrics import DeviceMetricSample, StageSummary, integrate_energy_mah, parse_metric_sample, parse_pgrep_pid
from repro.phones.phone import VirtualPhone
from repro.simkernel import AllOf, RandomStreams, Simulator, Timeout


@dataclass
class PhoneAssignment:
    """The physical tier's share of one device grade for a task.

    Attributes
    ----------
    grade:
        Device grade.
    assignments:
        Computing devices emulated on phones (``N - q - x`` of them).
    benchmarking:
        Devices reserved for performance measurement (``q`` of them);
        "these devices are not reused as computation units in a single
        round" (§VI-B1).
    n_phones:
        Computing phones requested (the allocation model's ``m``).
    flow / feature_dim / backend / numeric:
        Execution parameters, mirroring the logical tier's plan.
    """

    grade: str
    assignments: list[DeviceAssignment]
    benchmarking: list[DeviceAssignment]
    n_phones: int
    flow: OperatorFlow
    feature_dim: int = 4096
    backend: NumericBackend = DEVICE_BACKEND
    numeric: bool = True

    def __post_init__(self) -> None:
        if self.n_phones < 0:
            raise ValueError("n_phones must be >= 0")
        if self.assignments and self.n_phones == 0:
            raise ValueError("computing devices require at least one phone")


@dataclass
class BenchmarkRecord:
    """Everything measured on one benchmarking phone in one round."""

    serial: str
    round_index: int
    samples: list[DeviceMetricSample] = field(default_factory=list)
    boundaries: list[tuple[ApkStage, float, float]] = field(default_factory=list)

    def stage_summaries(self) -> list[StageSummary]:
        """Table-I rows reconstructed from the sampled series."""
        summaries = []
        for stage, start, end in self.boundaries:
            window = [s for s in self.samples if start - 1e-9 <= s.timestamp <= end + 1e-9]
            energy = integrate_energy_mah(window)
            if len(window) >= 2:
                comm_kb = (window[-1].total_bytes - window[0].total_bytes) / 1024.0
            else:
                comm_kb = 0.0
            summaries.append(
                StageSummary(
                    stage=int(stage),
                    label=stage.label,
                    power_mah=energy,
                    duration_min=(end - start) / 60.0,
                    comm_kb=comm_kb,
                )
            )
        return summaries


class PhoneMgr:
    """Manages the physical devices cluster for one SimDC deployment.

    Parameters
    ----------
    sim / adb / streams:
        Shared simulation plumbing.
    phones:
        The full physical fleet (local + provisioned MSP phones).
    cost_model:
        beta/lambda/stage-window constants.
    apk:
        Training APK installed on participating phones.
    poll_interval:
        Benchmarking sampling period in seconds (1 Hz default).
    on_sample:
        Optional hook invoked per collected sample — the platform wires
        this to the cloud metrics database upload.
    """

    def __init__(
        self,
        sim: Simulator,
        adb: SimulatedAdb,
        phones: list[VirtualPhone],
        cost_model: Optional[PhysicalCostModel] = None,
        apk: Optional[TrainingApk] = None,
        streams: Optional[RandomStreams] = None,
        poll_interval: float = 1.0,
        on_sample: Optional[Callable[[DeviceMetricSample], None]] = None,
        busy_registry: Optional[set[str]] = None,
    ) -> None:
        if poll_interval <= 0:
            raise ValueError("poll_interval must be positive")
        self.sim = sim
        self.adb = adb
        self.phones = list(phones)
        self.cost_model = cost_model or PhysicalCostModel()
        self.apk = apk or TrainingApk()
        self.streams = streams or RandomStreams(0)
        self.poll_interval = float(poll_interval)
        self.on_sample = on_sample
        self.plans: list[PhoneAssignment] = []
        self.computing_phones: dict[str, list[VirtualPhone]] = {}
        self.benchmark_phones: dict[str, list[VirtualPhone]] = {}
        self.benchmark_records: list[BenchmarkRecord] = []
        # Reservation registry; pass a shared set so several PhoneMgr
        # sessions (one per concurrent task) never double-book a phone.
        self._busy: set[str] = busy_registry if busy_registry is not None else set()

    # ------------------------------------------------------------------
    # device selection
    # ------------------------------------------------------------------
    def available_phones(self, grade: str) -> list[VirtualPhone]:
        """Idle phones of a grade, local devices first (cheaper control)."""
        free = [
            phone
            for phone in self.phones
            if phone.spec.grade == grade and phone.serial not in self._busy
        ]
        return sorted(free, key=lambda p: (p.is_msp, p.serial))

    def select_phones(self, grade: str, count: int) -> list[VirtualPhone]:
        """Reserve ``count`` phones of ``grade`` (raises if short)."""
        if count < 0:
            raise ValueError("count must be >= 0")
        candidates = self.available_phones(grade)
        if len(candidates) < count:
            raise RuntimeError(
                f"need {count} {grade}-grade phones, only {len(candidates)} available"
            )
        chosen = candidates[:count]
        for phone in chosen:
            self._busy.add(phone.serial)
        return chosen

    def release_phones(self, phones: list[VirtualPhone]) -> None:
        """Return phones to the pool."""
        for phone in phones:
            self._busy.discard(phone.serial)

    # ------------------------------------------------------------------
    # task lifecycle
    # ------------------------------------------------------------------
    def prepare(self, plans: list[PhoneAssignment], task_id: str = "task") -> Generator:
        """Select phones, install the APK, start the compute framework.

        Computing phones pay the framework-startup lambda here (once per
        task); benchmarking phones stay cold — their five-stage protocol
        starts from a cleared state every round.
        """
        if self.plans:
            raise RuntimeError("PhoneMgr already has a prepared task")
        self.plans = list(plans)
        startups = []
        for plan in self.plans:
            computing = self.select_phones(plan.grade, plan.n_phones) if plan.assignments else []
            benchmarking = self.select_phones(plan.grade, len(plan.benchmarking))
            self.computing_phones[plan.grade] = computing
            self.benchmark_phones[plan.grade] = benchmarking
            for phone in computing + benchmarking:
                self.adb.install(phone.serial, self.apk)
            for phone in computing:
                startups.append(
                    self.sim.process(
                        self._start_framework(phone, plan.grade),
                        name=f"{task_id}.{phone.serial}.startup",
                    )
                )
        if startups:
            yield AllOf(startups)

    def _start_framework(self, phone: VirtualPhone, grade: str) -> Generator:
        yield from self._control_latency(phone)
        self.adb.shell(phone.serial, f"pm clear {self.apk.package}")
        self.adb.shell(phone.serial, f"am start -n {self.apk.component}")
        yield Timeout(self.cost_model.startup_duration(grade))

    def _control_latency(self, phone: VirtualPhone) -> Generator:
        if phone.is_msp and self.cost_model.msp_control_latency > 0:
            yield Timeout(self.cost_model.msp_control_latency)

    # ------------------------------------------------------------------
    # round execution
    # ------------------------------------------------------------------
    def run_round(
        self,
        round_index: int,
        global_weights: Optional[np.ndarray],
        global_bias: float,
        model_bytes: int,
        on_outcome: Callable[[DeviceRoundOutcome], None],
    ) -> Generator:
        """Execute one round on computing + benchmarking phones."""
        processes = []
        for plan in self.plans:
            queues = self._partition(plan.assignments, max(1, plan.n_phones))
            for phone, queue in zip(self.computing_phones[plan.grade], queues):
                processes.append(
                    self.sim.process(
                        self._run_computing_phone(
                            phone, queue, round_index, plan, global_weights, global_bias, model_bytes, on_outcome
                        ),
                        name=f"{phone.serial}.round{round_index}",
                    )
                )
            for phone, assignment in zip(self.benchmark_phones[plan.grade], plan.benchmarking):
                processes.append(
                    self.sim.process(
                        self._run_benchmark_phone(
                            phone, assignment, round_index, plan, global_weights, global_bias, model_bytes, on_outcome
                        ),
                        name=f"{phone.serial}.bench{round_index}",
                    )
                )
        if processes:
            yield AllOf(processes)

    def teardown(self) -> Generator:
        """Stop APKs, idle every phone, release reservations."""
        for phones in list(self.computing_phones.values()) + list(self.benchmark_phones.values()):
            for phone in phones:
                yield from self._control_latency(phone)
                self.adb.shell(phone.serial, f"am force-stop {self.apk.package}")
                phone.set_idle()
                self.release_phones([phone])
        self.plans = []
        self.computing_phones.clear()
        self.benchmark_phones.clear()

    def abort(self) -> None:
        """Synchronous emergency teardown after a task failure.

        Skips control-latency niceties: force-stops any running APK,
        idles every reserved phone and returns it to the pool so sibling
        and queued tasks are unaffected by the crash.
        """
        for phones in list(self.computing_phones.values()) + list(self.benchmark_phones.values()):
            for phone in phones:
                if phone.running_pid is not None:
                    self.adb.shell(phone.serial, f"am force-stop {self.apk.package}")
                phone.set_idle()
                self.release_phones([phone])
        self.plans = []
        self.computing_phones.clear()
        self.benchmark_phones.clear()

    # ------------------------------------------------------------------
    def _run_computing_phone(
        self,
        phone: VirtualPhone,
        queue: list[DeviceAssignment],
        round_index: int,
        plan: PhoneAssignment,
        global_weights: Optional[np.ndarray],
        global_bias: float,
        model_bytes: int,
        on_outcome: Callable[[DeviceRoundOutcome], None],
    ) -> Generator:
        """Sequentially emulate the queued devices on one phone."""
        for assignment in queue:
            data_bytes = assignment.dataset.nbytes() if assignment.dataset else 64 * assignment.n_samples
            yield Timeout(self.adb.push_duration(phone.serial, data_bytes + model_bytes))
            duration = self.cost_model.training_duration(plan.grade, plan.flow.total_work)
            update = None
            payload = model_bytes
            if plan.numeric:
                update = self._execute_flow(assignment, round_index, plan, global_weights, global_bias)
                if update is not None:
                    payload = update.payload_bytes()
            done = phone.start_training(duration, upload_bytes=payload)
            yield done
            yield Timeout(payload / phone.spec.network_bandwidth_bps)
            on_outcome(
                DeviceRoundOutcome(
                    device_id=assignment.device_id,
                    grade=plan.grade,
                    round_index=round_index,
                    n_samples=assignment.n_samples,
                    payload_bytes=payload,
                    update=update,
                    finished_at=self.sim.now,
                )
            )

    def _run_benchmark_phone(
        self,
        phone: VirtualPhone,
        assignment: DeviceAssignment,
        round_index: int,
        plan: PhoneAssignment,
        global_weights: Optional[np.ndarray],
        global_bias: float,
        model_bytes: int,
        on_outcome: Callable[[DeviceRoundOutcome], None],
    ) -> Generator:
        """The measured five-stage protocol of Table I on one phone."""
        record = BenchmarkRecord(serial=phone.serial, round_index=round_index)
        self.benchmark_records.append(record)
        sampling = {"active": True}
        window = self.cost_model.stage_window

        def boundary(stage: ApkStage, start: float) -> None:
            # Snap a synchronous sample at the transition so per-stage
            # deltas (energy, communication) are anchored exactly at the
            # boundary instead of at the nearest polling tick.
            self._record_sample(phone, record)
            record.boundaries.append((stage, start, self.sim.now))

        sampler = self.sim.process(
            self._sample_loop(phone, record, sampling), name=f"{phone.serial}.sampler"
        )

        # Stage 1: clear background, APK not running.
        yield from self._control_latency(phone)
        self.adb.shell(phone.serial, f"pm clear {self.apk.package}")
        start = self.sim.now
        yield Timeout(window)
        boundary(ApkStage.NO_APK, start)

        # Stage 2: launch the APK, do not train yet.
        yield from self._control_latency(phone)
        self.adb.shell(phone.serial, f"am start -n {self.apk.component}")
        start = self.sim.now
        yield Timeout(window)
        boundary(ApkStage.APK_LAUNCH, start)

        # Stage 3: training.
        duration = self.cost_model.training_duration(plan.grade, plan.flow.total_work)
        update = None
        payload = model_bytes
        if plan.numeric:
            update = self._execute_flow(assignment, round_index, plan, global_weights, global_bias)
            if update is not None:
                payload = update.payload_bytes()
        start = self.sim.now
        done = phone.start_training(duration, upload_bytes=payload)
        yield done
        boundary(ApkStage.TRAINING, start)
        on_outcome(
            DeviceRoundOutcome(
                device_id=assignment.device_id,
                grade=plan.grade,
                round_index=round_index,
                n_samples=assignment.n_samples,
                payload_bytes=payload,
                update=update,
                finished_at=self.sim.now,
            )
        )

        # Stage 4: post-training, APK still in the foreground.
        start = self.sim.now
        yield Timeout(window)
        boundary(ApkStage.POST_TRAINING, start)

        # Stage 5: exit the APK and clear background tasks.
        yield from self._control_latency(phone)
        self.adb.shell(phone.serial, f"am force-stop {self.apk.package}")
        start = self.sim.now
        yield Timeout(window)
        boundary(ApkStage.APK_CLOSURE, start)
        sampling["active"] = False
        phone.set_idle()
        yield sampler

    def _sample_loop(
        self, phone: VirtualPhone, record: BenchmarkRecord, sampling: dict
    ) -> Generator:
        """Poll the five quoted ADB commands at the configured frequency."""
        while sampling["active"]:
            self._record_sample(phone, record)
            yield Timeout(self.poll_interval)

    def _record_sample(self, phone: VirtualPhone, record: BenchmarkRecord) -> None:
        """Collect one sample via raw ADB commands and post-processing."""
        package = self.apk.package
        current_raw = self.adb.shell(phone.serial, "cat /sys/class/power_supply/battery/current_now")
        voltage_raw = self.adb.shell(phone.serial, "cat /sys/class/power_supply/battery/voltage_now")
        pid_raw = self.adb.shell(phone.serial, f"pgrep -f {package}")
        pid = parse_pgrep_pid(pid_raw) or 0
        if pid:
            top_raw = self.adb.shell(phone.serial, f"top -b -n 1 -p {pid}")
            dumpsys_raw = self.adb.shell(phone.serial, f"dumpsys meminfo {package} | grep PSS")
            net_raw = self.adb.shell(phone.serial, f"cat /proc/{pid}/net/dev | grep wlan")
        else:
            top_raw, dumpsys_raw, net_raw = "", "", ""
        sample = parse_metric_sample(
            timestamp=self.sim.now,
            serial=phone.serial,
            current_raw=current_raw,
            voltage_raw=voltage_raw,
            top_raw=top_raw,
            pid=pid,
            dumpsys_raw=dumpsys_raw,
            net_dev_raw=net_raw,
        )
        record.samples.append(sample)
        if self.on_sample is not None:
            self.on_sample(sample)

    def _execute_flow(
        self,
        assignment: DeviceAssignment,
        round_index: int,
        plan: PhoneAssignment,
        global_weights: Optional[np.ndarray],
        global_bias: float,
    ):
        if assignment.dataset is None:
            raise RuntimeError(
                f"device {assignment.device_id} has no dataset but the run is numeric"
            )
        context = OperatorContext(
            device_id=assignment.device_id,
            grade=plan.grade,
            dataset=assignment.dataset,
            feature_dim=plan.feature_dim,
            backend=plan.backend,
            global_weights=global_weights,
            global_bias=global_bias,
            round_index=round_index,
            rng=self.streams.get(f"phone-exec.{assignment.device_id}"),
        )
        plan.flow.execute(context)
        return context.outputs.get("update")

    @staticmethod
    def _partition(assignments: list[DeviceAssignment], n_phones: int) -> list[list[DeviceAssignment]]:
        queues: list[list[DeviceAssignment]] = [[] for _ in range(n_phones)]
        for index, assignment in enumerate(assignments):
            queues[index % n_phones].append(assignment)
        return queues
