"""Device Simulation substrate: a virtual Android phone cluster.

The paper's physical tier is a cluster of real Android phones (10 local +
20 remote "MSP" devices) driven over ADB by the PhoneMgr module, with
dedicated *Benchmarking Devices* whose current, voltage, CPU, memory and
bandwidth are polled during training (§IV-C).

No physical phones exist in this environment, so this package provides
virtual phones whose battery, CPU, memory and network counters evolve in
simulated time, plus a :class:`~repro.phones.adb.SimulatedAdb` that answers
the *exact* shell commands quoted in the paper with realistic raw output
(sysfs microamp/microvolt readings, ``top`` tables, ``dumpsys`` PSS lines,
``/proc/net/dev`` rows).  PhoneMgr's staging, polling and post-processing
logic therefore runs unchanged against the simulation.
"""

from repro.phones.adb import AdbError, SimulatedAdb
from repro.phones.apk import ApkStage, TrainingApk
from repro.phones.battery import BatteryModel
from repro.phones.cost import PhysicalCostModel
from repro.phones.metrics import DeviceMetricSample, StageSummary, parse_metric_sample
from repro.phones.msp import MobileServicePlatform
from repro.phones.phone import VirtualPhone
from repro.phones.phonemgr import PhoneAssignment, PhoneMgr
from repro.phones.specs import (
    DEFAULT_LOCAL_FLEET,
    DEFAULT_MSP_FLEET,
    PhoneSpec,
    build_fleet,
)

__all__ = [
    "AdbError",
    "ApkStage",
    "BatteryModel",
    "DEFAULT_LOCAL_FLEET",
    "DEFAULT_MSP_FLEET",
    "DeviceMetricSample",
    "MobileServicePlatform",
    "PhoneAssignment",
    "PhoneMgr",
    "PhoneSpec",
    "PhysicalCostModel",
    "SimulatedAdb",
    "StageSummary",
    "TrainingApk",
    "VirtualPhone",
    "build_fleet",
    "parse_metric_sample",
]
