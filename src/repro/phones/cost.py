"""Cost model of the physical device tier.

Parameterises the allocation model's physical-tier constants: the per-
device training durations ``beta`` and the compute-framework startup times
``lambda`` (§IV-B), plus the fixed measurement windows surrounding the
training stage in Table I and remote-control latency for MSP phones.

The defaults reproduce Table I's durations: High-grade training runs 0.27
minutes (16.2 s) and Low-grade 0.36 minutes (21.6 s), while the four non-
training stages are measured over 0.25-minute (15 s) windows each.
"""

from __future__ import annotations

from dataclasses import dataclass, field

#: Table I training durations in seconds.
DEFAULT_BETA = {"High": 16.2, "Low": 21.6}

#: Compute-framework (APK + SDK) startup per phone, per task.
DEFAULT_LAMBDA = {"High": 45.0, "Low": 60.0}


@dataclass
class PhysicalCostModel:
    """Simulated-time costs of the phone tier.

    Attributes
    ----------
    beta:
        Per-grade duration (seconds) of one device's training round on a
        phone (the C++ MNN operators — faster than the server's Python
        operators at steady state, per §VI-B3).
    framework_startup:
        Per-grade lambda: APK install/launch + SDK warm-up paid once per
        phone per task.
    stage_window:
        Fixed measurement window for the non-training Table-I stages.
    msp_control_latency:
        Extra per-command latency when driving remote MSP phones.
    flow_reference_work:
        Flow work units ``beta`` was calibrated against.
    """

    beta: dict[str, float] = field(default_factory=lambda: dict(DEFAULT_BETA))
    framework_startup: dict[str, float] = field(default_factory=lambda: dict(DEFAULT_LAMBDA))
    stage_window: float = 15.0
    msp_control_latency: float = 0.8
    flow_reference_work: float = 10.4

    def __post_init__(self) -> None:
        for mapping, label in ((self.beta, "beta"), (self.framework_startup, "framework_startup")):
            if not mapping:
                raise ValueError(f"{label} must define at least one grade")
            for grade, value in mapping.items():
                if value <= 0:
                    raise ValueError(f"{label}[{grade!r}] must be positive")
        if self.stage_window <= 0:
            raise ValueError("stage_window must be positive")

    def training_duration(self, grade: str, flow_work: float | None = None) -> float:
        """Seconds one phone spends in the training stage per device."""
        if grade not in self.beta:
            raise KeyError(f"no beta calibrated for grade {grade!r}; known: {sorted(self.beta)}")
        base = self.beta[grade]
        if flow_work is None:
            return base
        if flow_work <= 0:
            raise ValueError("flow_work must be positive")
        return base * (flow_work / self.flow_reference_work)

    def startup_duration(self, grade: str) -> float:
        """The lambda term: one-off framework startup on a phone."""
        if grade not in self.framework_startup:
            raise KeyError(f"no lambda calibrated for grade {grade!r}")
        return self.framework_startup[grade]

    def waves(self, n_devices: int, n_phones: int) -> int:
        """Sequential emulation waves: ``ceil(n_devices / n_phones)``."""
        if n_phones <= 0:
            raise ValueError("n_phones must be positive")
        if n_devices < 0:
            raise ValueError("n_devices must be >= 0")
        return -(-n_devices // n_phones)

    def tier_duration(self, grade: str, n_devices: int, n_phones: int) -> float:
        """Closed-form makespan ``ceil(n/m) * beta + lambda`` from §IV-B."""
        if n_devices == 0:
            return 0.0
        return self.waves(n_devices, n_phones) * self.training_duration(grade) + self.startup_duration(grade)
