"""Phone model catalog and per-grade electrical characteristics.

The currents below are calibrated so that PhoneMgr's measured per-stage
energy reproduces Table I: e.g. a High-grade phone consuming 0.18 mAh over
a 0.27-minute training stage averages ~40 mA, whereas a Low-grade phone's
0.66 mAh over 0.36 minutes averages ~110 mA.  Low-end devices also idle
hotter (less efficient silicon, no big.LITTLE parking), matching the
paper's observation that "High-grade devices exhibit shorter runtime and
lower power consumption".
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.phones.apk import ApkStage

#: Average discharge current (mA) per Table-I stage, by grade.
_HIGH_STAGE_CURRENT_MA: dict[ApkStage, float] = {
    ApkStage.NO_APK: 57.6,
    ApkStage.APK_LAUNCH: 122.4,
    ApkStage.TRAINING: 40.0,
    ApkStage.POST_TRAINING: 88.8,
    ApkStage.APK_CLOSURE: 105.6,
}

_LOW_STAGE_CURRENT_MA: dict[ApkStage, float] = {
    ApkStage.NO_APK: 410.4,
    ApkStage.APK_LAUNCH: 432.0,
    ApkStage.TRAINING: 110.0,
    ApkStage.POST_TRAINING: 396.0,
    ApkStage.APK_CLOSURE: 436.8,
}

#: Idle (screen-off, no session) draw by grade.
_IDLE_CURRENT_MA = {"High": 18.0, "Low": 55.0}


@dataclass(frozen=True)
class PhoneSpec:
    """Static hardware description of one phone model.

    Attributes
    ----------
    model:
        Marketing/model string (used in selection and ``adb devices``).
    grade:
        SimDC performance grade.  The paper's default categorisation is
        High (>8 GB memory) vs Low (<8 GB), with finer classification by
        model / CPU frequency / NPU support supported here too.
    cpu_cores / cpu_freq_ghz / memory_gb:
        SoC shape.
    has_npu:
        Whether an NPU accelerates on-device training.
    battery_mah / nominal_voltage_mv:
        Battery pack parameters.
    network_bandwidth_bps:
        Sustained WLAN throughput for data staging.
    stage_current_ma:
        Mean discharge current per APK lifecycle stage.
    idle_current_ma:
        Draw outside any session.
    """

    model: str
    grade: str
    cpu_cores: int
    cpu_freq_ghz: float
    memory_gb: float
    has_npu: bool
    battery_mah: float
    nominal_voltage_mv: float = 3850.0
    network_bandwidth_bps: float = 40e6 / 8
    stage_current_ma: dict[ApkStage, float] = field(default_factory=dict)
    idle_current_ma: float = 25.0

    def __post_init__(self) -> None:
        if self.cpu_cores <= 0 or self.cpu_freq_ghz <= 0 or self.memory_gb <= 0:
            raise ValueError(f"invalid SoC shape for {self.model!r}")
        if self.battery_mah <= 0 or self.nominal_voltage_mv <= 0:
            raise ValueError(f"invalid battery for {self.model!r}")
        if not self.stage_current_ma:
            defaults = _HIGH_STAGE_CURRENT_MA if self.grade == "High" else _LOW_STAGE_CURRENT_MA
            object.__setattr__(self, "stage_current_ma", dict(defaults))
        if self.idle_current_ma <= 0:
            raise ValueError("idle_current_ma must be positive")

    def stage_current(self, stage: ApkStage) -> float:
        """Mean current (mA) drawn in a lifecycle stage."""
        return self.stage_current_ma[stage]


def _high(model: str, cores: int, freq: float, mem: float, npu: bool, battery: float) -> PhoneSpec:
    return PhoneSpec(
        model=model,
        grade="High",
        cpu_cores=cores,
        cpu_freq_ghz=freq,
        memory_gb=mem,
        has_npu=npu,
        battery_mah=battery,
        idle_current_ma=_IDLE_CURRENT_MA["High"],
    )


def _low(model: str, cores: int, freq: float, mem: float, battery: float) -> PhoneSpec:
    return PhoneSpec(
        model=model,
        grade="Low",
        cpu_cores=cores,
        cpu_freq_ghz=freq,
        memory_gb=mem,
        has_npu=False,
        battery_mah=battery,
        idle_current_ma=_IDLE_CURRENT_MA["Low"],
    )


#: The paper's local cluster: 10 phones, 4 High (>8 GB) + 6 Low (<8 GB).
DEFAULT_LOCAL_FLEET: tuple[PhoneSpec, ...] = (
    _high("SDC-X90Pro", 8, 3.2, 16.0, True, 5000),
    _high("SDC-X80", 8, 3.0, 12.0, True, 4800),
    _high("SDC-R11", 8, 2.8, 12.0, True, 4700),
    _high("SDC-R10", 8, 2.8, 10.0, False, 4600),
    _low("SDC-A57", 8, 2.2, 6.0, 5000),
    _low("SDC-A36", 8, 2.0, 6.0, 4900),
    _low("SDC-A17", 8, 1.8, 4.0, 4500),
    _low("SDC-A16", 8, 1.8, 4.0, 4300),
    _low("SDC-K9", 8, 2.0, 6.0, 4600),
    _low("SDC-K7", 8, 1.8, 4.0, 4200),
)

#: The paper's remote Mobile Service Platform: 20 phones, 13 High + 7 Low.
DEFAULT_MSP_FLEET: tuple[PhoneSpec, ...] = tuple(
    [_high(f"MSP-H{i:02d}", 8, 3.0, 12.0, i % 2 == 0, 4800) for i in range(13)]
    + [_low(f"MSP-L{i:02d}", 8, 2.0, 6.0, 4600) for i in range(7)]
)


def build_fleet(n_high: int, n_low: int, prefix: str = "SIM") -> list[PhoneSpec]:
    """Synthesize an arbitrary fleet (for scaled-up cluster experiments)."""
    if n_high < 0 or n_low < 0:
        raise ValueError("fleet sizes must be >= 0")
    fleet = [_high(f"{prefix}-H{i:03d}", 8, 3.0, 12.0, i % 2 == 0, 4800) for i in range(n_high)]
    fleet += [_low(f"{prefix}-L{i:03d}", 8, 2.0, 6.0, 4600) for i in range(n_low)]
    return fleet
