"""Post-processing of raw ADB output into device metric samples.

§IV-C: "The information collected typically contains other non-essential
data, requiring post-processing to extract valid data."  The parsers here
implement that extraction over the simulated ADB's realistic raw text —
magnitude of the signed microamp reading, the TOTAL-PSS line among heap
breakdowns, receive+transmit summation over the wlan row, and so on.
"""

from __future__ import annotations

import re
from dataclasses import dataclass


@dataclass
class DeviceMetricSample:
    """One polling-cycle snapshot of a benchmarking device.

    Field units follow the paper: current in µA, voltage in mV, CPU in
    percent, memory in kB, bandwidth (cumulative rx+tx) in bytes.
    """

    timestamp: float
    serial: str
    current_ua: float
    voltage_mv: float
    cpu_percent: float
    memory_kb: int
    rx_bytes: int
    tx_bytes: int

    @property
    def current_ma(self) -> float:
        """Current in milliamps (for energy integration)."""
        return self.current_ua / 1000.0

    @property
    def total_bytes(self) -> int:
        """Received plus transmitted bytes, the paper's bandwidth usage."""
        return self.rx_bytes + self.tx_bytes


@dataclass
class StageSummary:
    """Table-I row: per-stage energy, duration and communication."""

    stage: int
    label: str
    power_mah: float
    duration_min: float
    comm_kb: float

    def as_row(self) -> tuple[int, str, float, float, float]:
        """Tuple form for table rendering."""
        return (self.stage, self.label, self.power_mah, self.duration_min, self.comm_kb)


# ----------------------------------------------------------------------
# raw-output parsers
# ----------------------------------------------------------------------
def parse_current_ua(raw: str) -> float:
    """Magnitude of the sysfs ``current_now`` reading.

    Android kernels commonly report discharge as a negative number; the
    measurement pipeline wants the draw's magnitude.
    """
    text = raw.strip()
    if not text:
        raise ValueError("empty current_now output")
    return abs(float(text))


def parse_voltage_mv(raw: str) -> float:
    """``voltage_now`` is exposed in microvolts; the paper logs mV."""
    text = raw.strip()
    if not text:
        raise ValueError("empty voltage_now output")
    return float(text) / 1000.0


def parse_pgrep_pid(raw: str) -> int | None:
    """First pid from ``pgrep -f`` output, or None when not running."""
    for line in raw.splitlines():
        line = line.strip()
        if line.isdigit():
            return int(line)
    return None


def parse_top_cpu(raw: str, pid: int) -> float:
    """%CPU of ``pid`` from a batch-mode ``top`` table.

    Returns 0.0 when the pid's row is absent (process exited between the
    pgrep and the top call — a real race the pipeline tolerates).
    """
    for line in raw.splitlines():
        tokens = line.split()
        if tokens and tokens[0] == str(pid):
            # Row: PID USER PR NI VIRT RES SHR S %CPU %MEM TIME+ ARGS
            for index, token in enumerate(tokens):
                if token == "S" and index + 1 < len(tokens):
                    return float(tokens[index + 1])
            raise ValueError(f"unrecognised top row: {line!r}")
    return 0.0


_PSS_PATTERN = re.compile(r"TOTAL\s+PSS:\s*(\d+)")


def parse_pss_kb(raw: str) -> int:
    """TOTAL PSS (kB) from ``dumpsys`` output filtered by grep.

    Heap-breakdown lines also mention PSS; only the TOTAL line counts.
    Returns 0 when no process was found.
    """
    match = _PSS_PATTERN.search(raw)
    if match is None:
        return 0
    return int(match.group(1))


def parse_net_dev(raw: str) -> tuple[int, int]:
    """Sum (rx_bytes, tx_bytes) over wlan interfaces in ``/proc/net/dev``.

    The paper: bandwidth "encompasses both received and transmitted data
    that need to be extracted and summed".  Format per interface row:
    ``iface: rx_bytes rx_packets ... (8 cols) tx_bytes tx_packets ...``.
    """
    rx_total = 0
    tx_total = 0
    for line in raw.splitlines():
        if "wlan" not in line:
            continue
        _, _, counters = line.partition(":")
        fields = counters.split()
        if len(fields) < 9:
            raise ValueError(f"malformed /proc/net/dev row: {line!r}")
        rx_total += int(fields[0])
        tx_total += int(fields[8])
    return rx_total, tx_total


def parse_metric_sample(
    timestamp: float,
    serial: str,
    current_raw: str,
    voltage_raw: str,
    top_raw: str,
    pid: int,
    dumpsys_raw: str,
    net_dev_raw: str,
) -> DeviceMetricSample:
    """Assemble one sample from the five raw command outputs."""
    rx, tx = parse_net_dev(net_dev_raw)
    return DeviceMetricSample(
        timestamp=timestamp,
        serial=serial,
        current_ua=parse_current_ua(current_raw),
        voltage_mv=parse_voltage_mv(voltage_raw),
        cpu_percent=parse_top_cpu(top_raw, pid),
        memory_kb=parse_pss_kb(dumpsys_raw),
        rx_bytes=rx,
        tx_bytes=tx,
    )


def direct_metric_sample(timestamp: float, phone, package: str) -> DeviceMetricSample:
    """One sample read straight off a virtual phone's sensors.

    Fast path for simulated fleets: skips the five ADB string round-trips
    of :meth:`PhoneMgr._record_sample` but reproduces their result
    bit-for-bit, including the lossy steps real post-processing performs —
    ``top`` prints %CPU with one decimal (so the parsed value is the
    ``%.1f`` round-trip, not the raw float) — and the exact sensor read
    order, so the phone's noise streams advance identically: ``top``
    consults both CPU and PSS for its table even though the pipeline takes
    memory from ``dumpsys``.
    """
    current_ua = abs(float(phone.current_now_ua()))
    voltage_mv = float(phone.voltage_now_uv()) / 1000.0
    pid = phone.pgrep(package) or 0
    if pid:
        cpu_percent = float(format(phone.cpu_percent(pid), ".1f"))
        phone.memory_pss_kb(phone.running_package or "")  # top's %MEM column
        memory_kb = phone.memory_pss_kb(package)
        rx_bytes, tx_bytes = phone.net_dev_bytes(pid)
    else:
        cpu_percent, memory_kb, rx_bytes, tx_bytes = 0.0, 0, 0, 0
    return DeviceMetricSample(
        timestamp=timestamp,
        serial=phone.serial,
        current_ua=current_ua,
        voltage_mv=voltage_mv,
        cpu_percent=cpu_percent,
        memory_kb=memory_kb,
        rx_bytes=rx_bytes,
        tx_bytes=tx_bytes,
    )


def integrate_energy_mah(samples: list[DeviceMetricSample]) -> float:
    """Trapezoidal mAh estimate from sampled currents.

    This is the cloud-side reconstruction of stage energy: the exact
    integral lives only on the (real or virtual) phone.
    """
    if len(samples) < 2:
        return 0.0
    total = 0.0
    for earlier, later in zip(samples, samples[1:]):
        dt_hours = (later.timestamp - earlier.timestamp) / 3600.0
        if dt_hours < 0:
            raise ValueError("samples must be time-ordered")
        total += 0.5 * (earlier.current_ma + later.current_ma) * dt_hours
    return total
