"""Synthetic Avazu-like federated CTR dataset.

Each record is an ad impression: a handful of categorical fields hashed to
feature indices plus a binary click label.  Records are grouped by device;
the generator plants a logistic ground truth so that (a) models can
actually learn, (b) per-device click-through rates are controllable, which
the paper's non-IID experiments (Fig. 9, Fig. 11) rely on.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from collections.abc import Sequence

import numpy as np

from repro.data.features import HashingEncoder

#: Categorical fields modelled after the public Avazu schema.
AVAZU_FIELDS: tuple[str, ...] = (
    "hour_of_day",
    "banner_pos",
    "site_category",
    "app_category",
    "device_model",
    "device_type",
    "device_conn_type",
    "C14",
    "C17",
    "C21",
)

#: Vocabulary sizes per field (rough Avazu orders of magnitude, trimmed so
#: a 4096-bucket hash space stays informative).
_FIELD_CARDINALITIES: dict[str, int] = {
    "hour_of_day": 24,
    "banner_pos": 7,
    "site_category": 26,
    "app_category": 36,
    "device_model": 200,
    "device_type": 5,
    "device_conn_type": 4,
    "C14": 300,
    "C17": 120,
    "C21": 60,
}


@dataclass
class DeviceDataset:
    """The local data of one simulated device.

    Attributes
    ----------
    device_id:
        Stable identifier, mirrors Avazu's ``device_id`` column.
    features:
        ``(n_records, n_fields)`` int32 array of hashed feature indices.
    labels:
        ``(n_records,)`` int8 array of click labels.
    """

    device_id: str
    features: np.ndarray
    labels: np.ndarray

    def __post_init__(self) -> None:
        if self.features.ndim != 2:
            raise ValueError("features must be 2-D (records x fields)")
        if len(self.features) != len(self.labels):
            raise ValueError("features and labels must have equal length")

    def __len__(self) -> int:
        return len(self.labels)

    @property
    def n_samples(self) -> int:
        """Number of local records."""
        return len(self.labels)

    @property
    def positive_rate(self) -> float:
        """Observed click-through rate of this shard."""
        if len(self.labels) == 0:
            return 0.0
        return float(self.labels.mean())

    def nbytes(self) -> int:
        """Approximate in-memory payload size (used for transfer costing)."""
        return int(self.features.nbytes + self.labels.nbytes)


@dataclass
class FederatedDataset:
    """A device-partitioned CTR dataset plus a held-out test shard."""

    devices: dict[str, DeviceDataset]
    test: DeviceDataset
    feature_dim: int
    fields: tuple[str, ...] = AVAZU_FIELDS
    device_biases: dict[str, float] = field(default_factory=dict)

    @property
    def n_devices(self) -> int:
        """Number of device shards."""
        return len(self.devices)

    @property
    def n_records(self) -> int:
        """Total training records across all devices."""
        return sum(len(shard) for shard in self.devices.values())

    def device_ids(self) -> list[str]:
        """Sorted device identifiers (stable iteration order)."""
        return sorted(self.devices)

    def shard(self, device_id: str) -> DeviceDataset:
        """Return the shard of one device."""
        return self.devices[device_id]

    def subset(self, device_ids: Sequence[str]) -> FederatedDataset:
        """A view restricted to ``device_ids`` (same test shard)."""
        return FederatedDataset(
            devices={d: self.devices[d] for d in device_ids},
            test=self.test,
            feature_dim=self.feature_dim,
            fields=self.fields,
            device_biases={d: self.device_biases.get(d, 0.0) for d in device_ids},
        )


def _sigmoid(z: np.ndarray) -> np.ndarray:
    out = np.empty_like(z)
    positive = z >= 0
    out[positive] = 1.0 / (1.0 + np.exp(-z[positive]))
    expz = np.exp(z[~positive])
    out[~positive] = expz / (1.0 + expz)
    return out


class SyntheticAvazu:
    """Generator of device-partitioned synthetic CTR data.

    The ground truth is a sparse logistic model over the hashed feature
    space.  Each device adds a scalar logit bias: zero for the IID setting,
    or drawn from a two-component distribution for the paper's
    "differentially distributed" scenario.

    Parameters
    ----------
    n_devices:
        Number of device shards to generate.
    records_per_device:
        Mean local dataset size (actual sizes are Poisson-distributed
        around this mean, min 2 records).
    feature_dim:
        Hash-bucket count (model dimensionality).
    base_ctr:
        Population click-through rate before device bias.
    device_bias_std:
        Standard deviation of benign device-level logit noise.
    signal_scale / active_fraction:
        Strength of the planted logistic signal: standard deviation of
        the active weights and the fraction of hash buckets that carry
        signal.  The defaults make the task genuinely learnable (test
        accuracy climbs well above the majority rate within a few
        FedAvg rounds), which the aggregation-dynamics experiments
        (Figs. 6, 9, 11) rely on.
    seed:
        Reproducibility seed (independent of any simulator seed).
    """

    def __init__(
        self,
        n_devices: int = 100,
        records_per_device: int = 20,
        feature_dim: int = 4096,
        base_ctr: float = 0.17,
        device_bias_std: float = 0.3,
        signal_scale: float = 1.5,
        active_fraction: float = 0.5,
        seed: int = 0,
    ) -> None:
        if n_devices <= 0:
            raise ValueError("n_devices must be positive")
        if records_per_device < 2:
            raise ValueError("records_per_device must be >= 2")
        if not 0.0 < base_ctr < 1.0:
            raise ValueError("base_ctr must be in (0, 1)")
        if signal_scale <= 0:
            raise ValueError("signal_scale must be positive")
        if not 0.0 < active_fraction <= 1.0:
            raise ValueError("active_fraction must be in (0, 1]")
        self.n_devices = int(n_devices)
        self.records_per_device = int(records_per_device)
        self.feature_dim = int(feature_dim)
        self.base_ctr = float(base_ctr)
        self.device_bias_std = float(device_bias_std)
        self.signal_scale = float(signal_scale)
        self.active_fraction = float(active_fraction)
        self.seed = int(seed)
        self.encoder = HashingEncoder(feature_dim, AVAZU_FIELDS)

    def generate(
        self,
        device_biases: np.ndarray | None = None,
        test_records: int = 2000,
    ) -> FederatedDataset:
        """Create the federated dataset.

        Parameters
        ----------
        device_biases:
            Optional per-device logit offsets of length ``n_devices``;
            overrides the benign Gaussian biases.  Use
            :func:`repro.data.partition.label_skew_device_biases` for the
            paper's 70/30 differential distribution.
        test_records:
            Size of the held-out (bias-free) test shard.
        """
        rng = np.random.default_rng(np.random.SeedSequence((self.seed, 0xA7A2)))
        true_weights, _ = self._ground_truth(rng)
        vocab_for_calibration = {
            fld: self.encoder.vocabulary_indices(fld, _FIELD_CARDINALITIES[fld])
            for fld in AVAZU_FIELDS
        }
        global_bias = self._calibrate_intercept(rng, true_weights, vocab_for_calibration)
        if device_biases is None:
            device_biases = rng.normal(0.0, self.device_bias_std, self.n_devices)
        elif len(device_biases) != self.n_devices:
            raise ValueError(
                f"device_biases must have length {self.n_devices}, got {len(device_biases)}"
            )

        vocab = vocab_for_calibration
        sizes = np.maximum(2, rng.poisson(self.records_per_device, self.n_devices))

        devices: dict[str, DeviceDataset] = {}
        bias_map: dict[str, float] = {}
        for i in range(self.n_devices):
            device_id = f"dev-{i:06d}"
            features = self._draw_features(rng, int(sizes[i]), vocab)
            labels = self._draw_labels(
                rng, features, true_weights, global_bias + float(device_biases[i])
            )
            devices[device_id] = DeviceDataset(device_id, features, labels)
            bias_map[device_id] = float(device_biases[i])

        test_features = self._draw_features(rng, test_records, vocab)
        test_labels = self._draw_labels(rng, test_features, true_weights, global_bias)
        test = DeviceDataset("test", test_features, test_labels)
        return FederatedDataset(
            devices=devices,
            test=test,
            feature_dim=self.feature_dim,
            device_biases=bias_map,
        )

    # ------------------------------------------------------------------
    def _ground_truth(self, rng: np.random.Generator) -> tuple[np.ndarray, float]:
        """Sparse true weights plus the naive (uncalibrated) intercept."""
        weights = np.zeros(self.feature_dim)
        n_active = max(8, int(self.active_fraction * self.feature_dim))
        active = rng.choice(self.feature_dim, size=n_active, replace=False)
        weights[active] = rng.normal(0.0, self.signal_scale, n_active)
        intercept = float(np.log(self.base_ctr / (1.0 - self.base_ctr)))
        return weights, intercept

    def _calibrate_intercept(
        self,
        rng: np.random.Generator,
        true_weights: np.ndarray,
        vocab: dict[str, np.ndarray],
        n_calibration: int = 4000,
    ) -> float:
        """Intercept such that the *population* CTR hits ``base_ctr``.

        High-variance logits pull the mean of a sigmoid toward 0.5, so the
        naive log-odds intercept undershoots skewed targets; bisection on
        a calibration sample fixes the realised rate.
        """
        features = self._draw_features(rng, n_calibration, vocab)
        scores = true_weights[features].sum(axis=1)
        low, high = -15.0, 15.0
        for _ in range(60):
            mid = (low + high) / 2.0
            if float(_sigmoid(scores + mid).mean()) < self.base_ctr:
                low = mid
            else:
                high = mid
        return (low + high) / 2.0

    def _draw_features(
        self,
        rng: np.random.Generator,
        n_records: int,
        vocab: dict[str, np.ndarray],
    ) -> np.ndarray:
        """Sample hashed feature index rows, Zipf-skewed per field."""
        columns = []
        for fld in AVAZU_FIELDS:
            table = vocab[fld]
            cardinality = len(table)
            # Zipf-ish popularity: categorical fields in click logs are
            # heavily skewed toward a few frequent values.
            ranks = np.arange(1, cardinality + 1, dtype=float)
            probs = 1.0 / ranks
            probs /= probs.sum()
            ids = rng.choice(cardinality, size=n_records, p=probs)
            columns.append(table[ids])
        return np.stack(columns, axis=1).astype(np.int32)

    def _draw_labels(
        self,
        rng: np.random.Generator,
        features: np.ndarray,
        true_weights: np.ndarray,
        bias: float,
    ) -> np.ndarray:
        """Bernoulli labels from the planted logistic model."""
        logits = true_weights[features].sum(axis=1) + bias
        probs = _sigmoid(logits)
        return (rng.random(len(probs)) < probs).astype(np.int8)


def make_federated_ctr_data(
    n_devices: int,
    records_per_device: int = 20,
    feature_dim: int = 4096,
    seed: int = 0,
    skew: dict | None = None,
    test_records: int = 2000,
    base_ctr: float = 0.17,
) -> FederatedDataset:
    """One-call helper combining the generator with optional label skew.

    ``skew`` of ``None`` produces the identically-distributed setting; a
    dict like ``{"positive_fraction": 0.7, "spread": 2.5}`` produces the
    paper's differentially-distributed devices (see
    :func:`repro.data.partition.label_skew_device_biases`).  ``base_ctr``
    of 0.5 yields a balanced population, which keeps plain accuracy an
    informative convergence metric in the aggregation experiments.
    """
    from repro.data.partition import label_skew_device_biases

    generator = SyntheticAvazu(
        n_devices=n_devices,
        records_per_device=records_per_device,
        feature_dim=feature_dim,
        seed=seed,
        base_ctr=base_ctr,
    )
    biases = None
    if skew is not None:
        biases = label_skew_device_biases(
            n_devices,
            positive_fraction=skew.get("positive_fraction", 0.7),
            spread=skew.get("spread", 2.5),
            seed=seed,
        )
    return generator.generate(device_biases=biases, test_records=test_records)
