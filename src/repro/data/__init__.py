"""Data substrate: synthetic Avazu-like CTR data and device partitioning.

The paper trains logistic-regression CTR models on a 2M-record subset of
the public Avazu click-log covering 100k devices.  That subset is not
redistributable, so this package generates a synthetic equivalent with the
same *shape*: categorical ad-impression fields hashed into a fixed feature
space, records grouped by ``device_id``, a known logistic ground truth, and
configurable per-device label skew (the paper's "differentially
distributed" 70% positive-heavy / 30% negative-heavy scenario).
"""

from repro.data.avazu import (
    AVAZU_FIELDS,
    DeviceDataset,
    FederatedDataset,
    SyntheticAvazu,
    make_federated_ctr_data,
)
from repro.data.features import HashingEncoder
from repro.data.partition import (
    assign_delay_profiles,
    label_skew_device_biases,
    split_by_device_column,
)

__all__ = [
    "AVAZU_FIELDS",
    "DeviceDataset",
    "FederatedDataset",
    "HashingEncoder",
    "SyntheticAvazu",
    "assign_delay_profiles",
    "label_skew_device_biases",
    "make_federated_ctr_data",
    "split_by_device_column",
]
