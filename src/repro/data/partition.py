"""Device partitioning and distribution-shift helpers.

Three concerns live here:

* planting the paper's "differentially distributed" label skew (70% of
  devices positive-heavy, 30% negative-heavy — Fig. 11b);
* mapping device CTR to upload delay profiles (the Fig. 9 scenario where
  high-CTR clients respond faster than low-CTR clients);
* slicing a flat record table by a device-id column, mirroring how the
  paper carves the real Avazu CSV into per-device shards.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np


def label_skew_device_biases(
    n_devices: int,
    positive_fraction: float = 0.7,
    spread: float = 2.5,
    seed: int = 0,
) -> np.ndarray:
    """Per-device logit offsets realising the paper's 70/30 split.

    A fraction ``positive_fraction`` of devices receives logit offset
    ``+spread`` (a high proportion of positive samples) and the rest
    ``-spread`` (negative-heavy).  Device order is shuffled so grade or id
    ordering does not correlate with skew.

    Returns an array aligned with generator device index ``i``.
    """
    if not 0.0 <= positive_fraction <= 1.0:
        raise ValueError("positive_fraction must be within [0, 1]")
    if spread < 0:
        raise ValueError("spread must be >= 0")
    rng = np.random.default_rng(np.random.SeedSequence((seed, 0x5EED)))
    n_positive = int(round(positive_fraction * n_devices))
    biases = np.full(n_devices, -spread)
    biases[:n_positive] = spread
    rng.shuffle(biases)
    return biases


def assign_delay_profiles(
    device_biases: dict[str, float],
    sigma: float,
    max_delay: float,
    seed: int = 0,
) -> dict[str, float]:
    """Map device label bias (a CTR proxy) to an upload delay.

    The Fig. 9 scenario: "clients with higher CTR transmit data faster to
    the cloud, while those with lower CTR experience longer delays".  The
    delay for the device at CTR-rank ``u`` (0 = highest CTR) is the
    ``u``-quantile of a right-tailed normal ``|N(0, sigma)|`` — exactly the
    family of traffic curves the paper shapes with DeviceFlow — truncated
    to ``max_delay``.  Ties in bias are broken by a seeded jitter so equal-
    bias devices spread across the curve.

    Returns ``device_id -> delay_seconds``.
    """
    if sigma <= 0:
        raise ValueError("sigma must be positive")
    if max_delay <= 0:
        raise ValueError("max_delay must be positive")
    rng = np.random.default_rng(np.random.SeedSequence((seed, 0xDE1A)))
    ids = sorted(device_biases)
    jitter = rng.normal(0.0, 1e-6, len(ids))
    scores = np.array([device_biases[d] for d in ids]) + jitter
    # Highest CTR (largest bias) should get rank 0 -> shortest delay.
    order = np.argsort(-scores)
    ranks = np.empty(len(ids), dtype=int)
    ranks[order] = np.arange(len(ids))
    quantiles = (ranks + 0.5) / len(ids)
    # Quantile of |N(0, sigma)|: use the inverse error function.  Delays
    # beyond the window are truncated (the device responds at the window
    # edge), preserving sigma's control over how early mass arrives.
    from scipy.special import erfinv

    delays = sigma * np.sqrt(2.0) * erfinv(quantiles)
    delays = np.minimum(delays, max_delay)
    return {device_id: float(delay) for device_id, delay in zip(ids, delays)}


def split_by_device_column(
    features: np.ndarray,
    labels: np.ndarray,
    device_ids: Sequence[str],
) -> dict[str, tuple[np.ndarray, np.ndarray]]:
    """Group a flat record table into per-device shards.

    Mirrors the paper's preparation step of grouping the Avazu CSV by its
    ``device_id`` column.  Rows keep their original relative order within
    each shard.

    Returns ``device_id -> (features, labels)``.
    """
    if len(features) != len(labels) or len(labels) != len(device_ids):
        raise ValueError("features, labels and device_ids must align")
    ids = np.asarray(device_ids)
    shards: dict[str, tuple[np.ndarray, np.ndarray]] = {}
    for device_id in np.unique(ids):
        mask = ids == device_id
        shards[str(device_id)] = (features[mask], labels[mask])
    return shards


def iid_sample_counts(
    n_devices: int, total_records: int, seed: int = 0
) -> np.ndarray:
    """Near-uniform record counts summing exactly to ``total_records``."""
    if n_devices <= 0:
        raise ValueError("n_devices must be positive")
    if total_records < n_devices:
        raise ValueError("need at least one record per device")
    base = total_records // n_devices
    counts = np.full(n_devices, base)
    remainder = total_records - base * n_devices
    rng = np.random.default_rng(np.random.SeedSequence((seed, 0x11D)))
    extra = rng.choice(n_devices, size=remainder, replace=False)
    counts[extra] += 1
    return counts
