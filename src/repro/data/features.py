"""Hashing-trick feature encoder for categorical CTR fields.

Avazu-style records are tuples of categorical values (site category, app
category, device type, ...).  Production CTR pipelines hash each
``(field, value)`` pair into a fixed-size feature space; the logistic model
then owns one weight per hash bucket.  The encoder here reproduces that
scheme deterministically (SHA-based, no process-salt) so datasets are
reproducible across runs.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.simkernel.random import stable_hash


class HashingEncoder:
    """Map categorical field values to indices in ``[0, dim)``.

    Each record with ``len(fields)`` categorical values becomes a fixed-
    length integer vector of hash-bucket indices (a "multi-hot" encoding:
    the model scores a record by summing the weights at those indices).

    Parameters
    ----------
    dim:
        Size of the hashed feature space.  The paper's ~33 KB model uplink
        corresponds to a float64 weight vector of 4096 entries, which is
        the default used throughout the reproduction.
    fields:
        Ordered categorical field names.
    """

    def __init__(self, dim: int, fields: Sequence[str]) -> None:
        if dim <= 0:
            raise ValueError(f"dim must be positive, got {dim!r}")
        if not fields:
            raise ValueError("at least one field is required")
        self.dim = int(dim)
        self.fields = tuple(fields)
        self._cache: dict[tuple[str, str], int] = {}

    @property
    def n_fields(self) -> int:
        """Number of categorical fields per record."""
        return len(self.fields)

    def index_of(self, field: str, value: str) -> int:
        """Hash one ``(field, value)`` pair to its bucket index."""
        key = (field, value)
        if key not in self._cache:
            words = stable_hash(f"{field}={value}")
            self._cache[key] = words[0] % self.dim
        return self._cache[key]

    def encode_record(self, values: Sequence[str]) -> np.ndarray:
        """Encode one record (one value per field) to an index vector."""
        if len(values) != self.n_fields:
            raise ValueError(
                f"expected {self.n_fields} values ({self.fields}), got {len(values)}"
            )
        return np.array(
            [self.index_of(field, value) for field, value in zip(self.fields, values)],
            dtype=np.int32,
        )

    def encode_column(self, field: str, values: Sequence[str]) -> np.ndarray:
        """Vector-encode many values of a single field."""
        return np.array([self.index_of(field, v) for v in values], dtype=np.int32)

    def vocabulary_indices(self, field: str, cardinality: int) -> np.ndarray:
        """Bucket indices for the synthetic vocabulary ``{field}:0..n-1``.

        The synthetic generator draws category *ids* uniformly or by Zipf
        and maps them through this table, so generation is fully
        vectorised.
        """
        return self.encode_column(field, [str(i) for i in range(cardinality)])
