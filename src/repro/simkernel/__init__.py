"""Discrete-event simulation kernel underpinning the SimDC platform.

Every SimDC subsystem (the logical Ray-like cluster, the virtual phone
cluster, DeviceFlow, the cloud services and the task manager) advances a
single shared simulated clock owned by a :class:`Simulator`.  The kernel is
deliberately small: an event heap, generator-based processes, a handful of
synchronisation primitives, and named deterministic random streams.

Example
-------
>>> from repro.simkernel import Simulator, Timeout
>>> sim = Simulator()
>>> log = []
>>> def worker(name, delay):
...     yield Timeout(delay)
...     log.append((sim.now, name))
>>> _ = sim.process(worker("a", 2.0))
>>> _ = sim.process(worker("b", 1.0))
>>> final_time = sim.run()
>>> log
[(1.0, 'b'), (2.0, 'a')]
"""

from repro.simkernel.events import Event, EventQueue
from repro.simkernel.processes import (
    AllOf,
    AnyOf,
    Interrupt,
    Process,
    ProcessError,
    Signal,
    Timeout,
)
from repro.simkernel.random import RandomStreams, stable_hash
from repro.simkernel.resources import Semaphore, Store
from repro.simkernel.simulator import Simulator
from repro.simkernel.timeout_pool import PooledTimeout, RecurringTimeout, TimeoutPool

__all__ = [
    "AllOf",
    "AnyOf",
    "Event",
    "EventQueue",
    "Interrupt",
    "PooledTimeout",
    "Process",
    "ProcessError",
    "RandomStreams",
    "RecurringTimeout",
    "Semaphore",
    "Signal",
    "Simulator",
    "Store",
    "Timeout",
    "TimeoutPool",
    "stable_hash",
]
