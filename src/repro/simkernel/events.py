"""Event heap for the simulation kernel.

Events are ordered by ``(time, priority, sequence)``: earlier simulated time
first, then lower priority number, then insertion order.  The sequence
counter makes ordering fully deterministic, which in turn makes every SimDC
run reproducible for a fixed seed.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Any, Callable, Optional


@dataclass(order=True)
class Event:
    """A single scheduled callback.

    Attributes
    ----------
    time:
        Absolute simulated time at which the callback fires.
    priority:
        Tie-break within one timestamp; lower fires first.  The kernel
        reserves priority ``0`` for ordinary events; resumptions of
        processes use the same default so ordering falls back to insertion
        order.
    seq:
        Monotonic insertion index (assigned by :class:`EventQueue`).
    callback:
        Zero-argument callable invoked when the event fires.
    cancelled:
        Lazily-deleted flag; cancelled events stay in the heap but are
        skipped when popped.
    """

    time: float
    priority: int
    seq: int
    callback: Callable[[], Any] = field(compare=False)
    cancelled: bool = field(default=False, compare=False)

    def cancel(self) -> None:
        """Mark the event so the queue skips it.  Idempotent."""
        self.cancelled = True


class EventQueue:
    """A deterministic priority queue of :class:`Event` objects."""

    def __init__(self) -> None:
        self._heap: list[Event] = []
        self._counter = itertools.count()
        self._live = 0

    def __len__(self) -> int:
        return self._live

    def __bool__(self) -> bool:
        return self._live > 0

    def push(self, time: float, callback: Callable[[], Any], priority: int = 0) -> Event:
        """Insert a callback to fire at absolute ``time``; return its handle."""
        event = Event(time=time, priority=priority, seq=next(self._counter), callback=callback)
        heapq.heappush(self._heap, event)
        self._live += 1
        return event

    def pop(self) -> Optional[Event]:
        """Remove and return the earliest non-cancelled event, or ``None``."""
        while self._heap:
            event = heapq.heappop(self._heap)
            if event.cancelled:
                continue
            self._live -= 1
            return event
        return None

    def peek_time(self) -> Optional[float]:
        """Time of the earliest pending event without removing it."""
        while self._heap and self._heap[0].cancelled:
            heapq.heappop(self._heap)
        if not self._heap:
            return None
        return self._heap[0].time

    def cancel(self, event: Event) -> None:
        """Cancel a previously pushed event (lazy deletion)."""
        if not event.cancelled:
            event.cancel()
            self._live -= 1

    def clear(self) -> None:
        """Drop every pending event."""
        self._heap.clear()
        self._live = 0
