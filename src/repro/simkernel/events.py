"""Event heap for the simulation kernel.

Events are ordered by ``(time, priority, sequence)``: earlier simulated time
first, then lower priority number, then insertion order.  The sequence
counter makes ordering fully deterministic, which in turn makes every SimDC
run reproducible for a fixed seed.

Two hot-path design points:

* Heap entries are plain ``(time, priority, seq, event)`` tuples so sift
  comparisons stay in C (tuple comparison) instead of calling back into a
  Python ``__lt__``.  At the Fig. 8 scales (~10^6 events per round) the
  sift comparisons dominate kernel time otherwise.
* An :class:`Event` stores ``(callback, args)`` instead of a closure, so
  scheduling never allocates a lambda per event.  Fire one with
  :meth:`Event.fire`.
"""

from __future__ import annotations

import heapq
import itertools
from collections.abc import Callable
from typing import Any


class Event:
    """A single scheduled callback.

    Attributes
    ----------
    time:
        Absolute simulated time at which the callback fires.
    priority:
        Tie-break within one timestamp; lower fires first.  The kernel
        reserves priority ``0`` for ordinary events; resumptions of
        processes use the same default so ordering falls back to insertion
        order.
    seq:
        Monotonic insertion index (assigned by :class:`EventQueue`).
    callback / args:
        The callable and the positional arguments it fires with.
    cancelled:
        Lazily-deleted flag; cancelled events stay in the heap but are
        skipped when popped.
    popped:
        Whether the queue has already removed this event from the heap
        (fired, batch-drained, or cleared).  Cancelling a popped event
        marks it skipped but no longer affects the queue's live count.
    """

    __slots__ = ("time", "priority", "seq", "callback", "args", "cancelled", "popped")

    def __init__(
        self,
        time: float,
        priority: int,
        seq: int,
        callback: Callable[..., Any],
        args: tuple = (),
    ) -> None:
        self.time = time
        self.priority = priority
        self.seq = seq
        self.callback = callback
        self.args = args
        self.cancelled = False
        self.popped = False

    def fire(self) -> Any:
        """Invoke the stored callback with its stored arguments."""
        return self.callback(*self.args)

    def cancel(self) -> None:
        """Mark the event so the queue skips it.  Idempotent."""
        self.cancelled = True

    def __repr__(self) -> str:
        state = ", cancelled" if self.cancelled else ""
        return f"Event(t={self.time!r}, prio={self.priority}, seq={self.seq}{state})"


class EventQueue:
    """A deterministic priority queue of :class:`Event` objects."""

    def __init__(self) -> None:
        self._heap: list[tuple[float, int, int, Event]] = []
        self._counter = itertools.count()
        self._live = 0

    def __len__(self) -> int:
        return self._live

    def __bool__(self) -> bool:
        return self._live > 0

    def push(
        self,
        time: float,
        callback: Callable[..., Any],
        args: tuple = (),
        priority: int = 0,
    ) -> Event:
        """Insert ``callback(*args)`` to fire at absolute ``time``; return its handle."""
        event = Event(time, priority, next(self._counter), callback, args)
        heapq.heappush(self._heap, (time, priority, event.seq, event))
        self._live += 1
        return event

    def pop(self) -> Event | None:
        """Remove and return the earliest non-cancelled event, or ``None``."""
        heap = self._heap
        while heap:
            event = heapq.heappop(heap)[3]
            event.popped = True
            if event.cancelled:
                continue
            self._live -= 1
            return event
        return None

    def pop_batch(self) -> list[Event]:
        """Drain the maximal run of events sharing the head's ``(time, priority)``.

        Returns the events in deterministic ``seq`` order (which equals
        insertion order within one ``(time, priority)`` run).  Returns an
        empty list when the queue is empty.

        Semantics note: a callback that fires during the batch may cancel a
        later event of the same batch — callers must re-check
        ``event.cancelled`` before firing each event (``Simulator.step_batch``
        does).  A callback that schedules a *new* event at the current
        timestamp sees it land in a subsequent batch, which matches
        one-at-a-time ordering except for the exotic case of scheduling at
        the current timestamp with a strictly lower priority number than the
        batch being drained.
        """
        heap = self._heap
        while heap and heap[0][3].cancelled:
            heapq.heappop(heap)[3].popped = True
        if not heap:
            return []
        head_time, head_priority = heap[0][0], heap[0][1]
        batch: list[Event] = []
        while heap and heap[0][0] == head_time and heap[0][1] == head_priority:
            event = heapq.heappop(heap)[3]
            event.popped = True
            if not event.cancelled:
                batch.append(event)
        self._live -= len(batch)
        return batch

    def peek_time(self) -> float | None:
        """Time of the earliest pending event without removing it."""
        heap = self._heap
        while heap and heap[0][3].cancelled:
            heapq.heappop(heap)[3].popped = True
        if not heap:
            return None
        return heap[0][0]

    def cancel(self, event: Event) -> None:
        """Cancel a previously pushed event (lazy deletion).

        Safe on events the queue already removed (fired or batch-drained):
        they are marked cancelled — so an in-flight ``step_batch`` skips
        them — without disturbing the live count.
        """
        if not event.cancelled:
            event.cancel()
            if not event.popped:
                self._live -= 1

    def clear(self) -> None:
        """Drop every pending event."""
        for entry in self._heap:
            entry[3].popped = True
        self._heap.clear()
        self._live = 0
