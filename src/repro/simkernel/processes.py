"""Generator-based processes and waitables.

A *process* is a Python generator driven by the :class:`~repro.simkernel
.simulator.Simulator`.  Each ``yield`` hands the simulator a *waitable*
describing what the process is waiting for:

``Timeout(dt)``
    Resume after ``dt`` units of simulated time.
``Signal``
    Resume when the signal fires; the fired value becomes the ``yield``
    expression's value.  Waiting on an already-fired signal resumes on the
    next event-loop step.
``Process``
    Resume when the child process finishes; its return value becomes the
    ``yield`` value.  If the child failed, the child's exception is raised
    inside the waiter.
``AllOf([...])`` / ``AnyOf([...])``
    Barrier / first-completed combinators over other waitables.
"""

from __future__ import annotations

from collections.abc import Callable, Generator, Iterable
from typing import TYPE_CHECKING, Any

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.simkernel.simulator import Simulator


class ProcessError(RuntimeError):
    """An unhandled exception escaped a process that nobody was awaiting."""


class Interrupt(Exception):
    """Thrown into a process by :meth:`Process.interrupt`.

    The ``cause`` attribute carries the value passed to ``interrupt``.
    """

    def __init__(self, cause: Any = None) -> None:
        super().__init__(cause)
        self.cause = cause


class Waitable:
    """Base class for everything a process may ``yield``."""

    def subscribe(self, sim: Simulator, callback: Callable[[Any, BaseException | None], None]) -> None:
        """Arrange for ``callback(value, error)`` once the waitable resolves."""
        raise NotImplementedError


class Timeout(Waitable):
    """Resume the yielding process after ``delay`` simulated time units."""

    __slots__ = ("delay", "value")

    def __init__(self, delay: float, value: Any = None) -> None:
        if delay < 0:
            raise ValueError(f"Timeout delay must be >= 0, got {delay!r}")
        self.delay = float(delay)
        self.value = value

    def subscribe(self, sim: Simulator, callback: Callable[[Any, BaseException | None], None]) -> None:
        sim.schedule(self.delay, callback, self.value, None)

    def __repr__(self) -> str:
        return f"Timeout({self.delay!r})"


class Signal(Waitable):
    """A one-shot event that processes can wait on.

    A signal is fired at most once with an optional value.  Firing wakes
    every current waiter; later waiters resume immediately (on the next
    event-loop step) with the stored value.  ``fail`` resolves the signal
    with an exception instead, which is re-raised inside each waiter.
    """

    __slots__ = ("name", "_fired", "_value", "_error", "_waiters")

    def __init__(self, name: str = "") -> None:
        self.name = name
        self._fired = False
        self._value: Any = None
        self._error: BaseException | None = None
        self._waiters: list[tuple["Simulator", Callable[[Any, BaseException | None], None]]] = []

    @property
    def fired(self) -> bool:
        """Whether the signal has already been resolved."""
        return self._fired

    @property
    def value(self) -> Any:
        """Value the signal resolved with (``None`` until fired)."""
        return self._value

    @property
    def error(self) -> BaseException | None:
        """Exception the signal failed with, if any."""
        return self._error

    def fire(self, value: Any = None) -> None:
        """Resolve the signal successfully.  Firing twice is an error."""
        self._resolve(value, None)

    def fail(self, error: BaseException) -> None:
        """Resolve the signal with an exception."""
        self._resolve(None, error)

    def _resolve(self, value: Any, error: BaseException | None) -> None:
        if self._fired:
            raise RuntimeError(f"Signal {self.name!r} fired twice")
        self._fired = True
        self._value = value
        self._error = error
        waiters, self._waiters = self._waiters, []
        for sim, callback in waiters:
            sim.schedule(0.0, callback, value, error)

    def subscribe(self, sim: Simulator, callback: Callable[[Any, BaseException | None], None]) -> None:
        if self._fired:
            sim.schedule(0.0, callback, self._value, self._error)
        else:
            self._waiters.append((sim, callback))

    def __repr__(self) -> str:
        state = "fired" if self._fired else "pending"
        return f"Signal({self.name!r}, {state})"


class Process(Waitable):
    """A running generator, itself waitable by other processes."""

    __slots__ = (
        "sim", "name", "_generator", "_done", "_result", "_error",
        "_waiters", "_interrupted", "_current_resume",
    )

    def __init__(self, sim: Simulator, generator: Generator, name: str = "") -> None:
        self.sim = sim
        self.name = name or getattr(generator, "__name__", "process")
        self._generator = generator
        self._done = False
        self._result: Any = None
        self._error: BaseException | None = None
        self._waiters: list[Callable[[Any, BaseException | None], None]] = []
        self._interrupted = False
        self._current_resume: Any | None = None

    @property
    def done(self) -> bool:
        """Whether the generator has finished (normally or with an error)."""
        return self._done

    @property
    def result(self) -> Any:
        """Return value of the generator (``None`` until done)."""
        return self._result

    @property
    def error(self) -> BaseException | None:
        """Exception that terminated the process, if any."""
        return self._error

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at the next step."""
        if self._done:
            return
        self._interrupted = True
        self.sim.schedule(0.0, self._step_throw, Interrupt(cause))

    def _step_throw(self, exc: BaseException, _err: BaseException | None = None) -> None:
        if self._done:
            return
        try:
            target = self._generator.throw(exc)
            self._wait_on(target)
        except StopIteration as stop:
            self._finish(stop.value, None)
        except BaseException as error:  # noqa: BLE001 - must capture to deliver to waiters
            self._finish(None, error)

    def _start(self) -> None:
        self._advance(None, None)

    def _advance(self, value: Any, error: BaseException | None) -> None:
        if self._done:
            return
        try:
            target = (
                self._generator.throw(error)
                if error is not None
                else self._generator.send(value)
            )
            self._wait_on(target)
        except StopIteration as stop:
            self._finish(stop.value, None)
        except BaseException as exc:  # noqa: BLE001 - must capture to deliver to waiters
            self._finish(None, exc)

    def _wait_on(self, target: Any) -> None:
        if not isinstance(target, Waitable):
            raise TypeError(
                f"Process {self.name!r} yielded {target!r}; processes must yield "
                "Timeout, Signal, Process, AllOf or AnyOf"
            )
        target.subscribe(self.sim, self._advance)

    def _finish(self, result: Any, error: BaseException | None) -> None:
        self._done = True
        self._result = result
        self._error = error
        waiters, self._waiters = self._waiters, []
        for callback in waiters:
            self.sim.schedule(0.0, callback, result, error)
        if error is not None and not waiters:
            self.sim._report_orphan_failure(self, error)

    def subscribe(self, sim: Simulator, callback: Callable[[Any, BaseException | None], None]) -> None:
        if self._done:
            sim.schedule(0.0, callback, self._result, self._error)
        else:
            self._waiters.append(callback)

    def __repr__(self) -> str:
        state = "done" if self._done else "running"
        return f"Process({self.name!r}, {state})"


class AllOf(Waitable):
    """Resolve when every child waitable has resolved.

    The waiter receives the list of child values in input order.  The first
    child error (in resolution order) is raised in the waiter instead.
    """

    def __init__(self, children: Iterable[Waitable]) -> None:
        self.children = list(children)

    def subscribe(self, sim: Simulator, callback: Callable[[Any, BaseException | None], None]) -> None:
        if not self.children:
            sim.schedule(0.0, callback, [], None)
            return
        results: list[Any] = [None] * len(self.children)
        state = {"remaining": len(self.children), "failed": False}

        def make_child_callback(index: int) -> Callable[[Any, BaseException | None], None]:
            def child_done(value: Any, error: BaseException | None) -> None:
                if state["failed"]:
                    return
                if error is not None:
                    state["failed"] = True
                    callback(None, error)
                    return
                results[index] = value
                state["remaining"] -= 1
                if state["remaining"] == 0:
                    callback(results, None)

            return child_done

        for i, child in enumerate(self.children):
            child.subscribe(sim, make_child_callback(i))


class AnyOf(Waitable):
    """Resolve when the first child resolves; value is ``(index, value)``."""

    def __init__(self, children: Iterable[Waitable]) -> None:
        self.children = list(children)
        if not self.children:
            raise ValueError("AnyOf requires at least one child waitable")

    def subscribe(self, sim: Simulator, callback: Callable[[Any, BaseException | None], None]) -> None:
        state = {"resolved": False}

        def make_child_callback(index: int) -> Callable[[Any, BaseException | None], None]:
            def child_done(value: Any, error: BaseException | None) -> None:
                if state["resolved"]:
                    return
                state["resolved"] = True
                if error is not None:
                    callback(None, error)
                else:
                    callback((index, value), None)

            return child_done

        for i, child in enumerate(self.children):
            child.subscribe(sim, make_child_callback(i))
