"""Counting resources and item stores for processes.

These primitives model contended capacity inside SimDC: free CPU bundles in
the logical cluster, idle phones in the device cluster, and DeviceFlow's
single-threaded dispatch capacity all reduce to a :class:`Semaphore`;
message hand-off between producers and consumers uses a :class:`Store`.
"""

from __future__ import annotations

from collections import deque
from typing import Any

from repro.simkernel.processes import Signal
from repro.simkernel.simulator import Simulator


class Semaphore:
    """A FIFO counting semaphore over simulated time.

    ``acquire(n)`` returns a :class:`Signal` the caller must ``yield``;
    grants are strictly first-come-first-served, so a large request at the
    head of the queue blocks smaller later ones (no starvation, matching
    how SimDC's ResourceManager freezes resource blocks).
    """

    def __init__(self, sim: Simulator, capacity: int, name: str = "semaphore") -> None:
        if capacity < 0:
            raise ValueError(f"capacity must be >= 0, got {capacity!r}")
        self.sim = sim
        self.name = name
        self.capacity = capacity
        self._available = capacity
        self._waiters: deque[tuple[int, Signal]] = deque()

    @property
    def available(self) -> int:
        """Units currently free."""
        return self._available

    @property
    def queued(self) -> int:
        """Number of acquire requests waiting."""
        return len(self._waiters)

    def acquire(self, amount: int = 1) -> Signal:
        """Request ``amount`` units; returns a signal firing when granted."""
        if amount < 0:
            raise ValueError(f"amount must be >= 0, got {amount!r}")
        if amount > self.capacity:
            raise ValueError(
                f"{self.name}: requested {amount} units but capacity is {self.capacity}"
            )
        grant = Signal(name=f"{self.name}.acquire({amount})")
        self._waiters.append((amount, grant))
        self._drain()
        return grant

    def release(self, amount: int = 1) -> None:
        """Return ``amount`` units to the pool and wake eligible waiters."""
        if amount < 0:
            raise ValueError(f"amount must be >= 0, got {amount!r}")
        self._available += amount
        if self._available > self.capacity:
            raise RuntimeError(
                f"{self.name}: released more than acquired "
                f"({self._available} > capacity {self.capacity})"
            )
        self._drain()

    def resize(self, new_capacity: int) -> None:
        """Elastically grow or shrink total capacity.

        Shrinking never revokes units already granted; it only reduces what
        future acquires can obtain.  The pool may therefore be temporarily
        over-committed after a shrink, which resolves as holders release.
        """
        if new_capacity < 0:
            raise ValueError(f"capacity must be >= 0, got {new_capacity!r}")
        delta = new_capacity - self.capacity
        self.capacity = new_capacity
        self._available += delta
        if self._available > 0:
            self._drain()

    def _drain(self) -> None:
        while self._waiters and self._waiters[0][0] <= self._available:
            amount, grant = self._waiters.popleft()
            self._available -= amount
            grant.fire(amount)


class Store:
    """An unbounded FIFO hand-off buffer between processes.

    ``get()`` returns a :class:`Signal` that fires with the next item;
    items and getters are matched in FIFO order.
    """

    def __init__(self, sim: Simulator, name: str = "store") -> None:
        self.sim = sim
        self.name = name
        self._items: deque[Any] = deque()
        self._getters: deque[Signal] = deque()

    def __len__(self) -> int:
        return len(self._items)

    def put(self, item: Any) -> None:
        """Deposit an item, waking the oldest waiting getter if any."""
        if self._getters:
            getter = self._getters.popleft()
            getter.fire(item)
        else:
            self._items.append(item)

    def get(self) -> Signal:
        """Request the next item; returns a signal firing with it."""
        signal = Signal(name=f"{self.name}.get")
        if self._items:
            signal.fire(self._items.popleft())
        else:
            self._getters.append(signal)
        return signal

    def get_nowait(self) -> Any | None:
        """Pop an item if available, else ``None`` (never blocks)."""
        if self._items:
            return self._items.popleft()
        return None

    def drain(self) -> list[Any]:
        """Remove and return all buffered items."""
        items = list(self._items)
        self._items.clear()
        return items
