"""A vectorized pool of homogeneous timeout callbacks.

The event heap is the right structure for *heterogeneous* events, but SimDC
workloads schedule thousands of near-identical waits — device availability
windows, per-device network delays, the lock-step waves of the logical
tier.  Pushing each of those through the heap costs a push, a pop and
O(log n) tuple comparisons per wait.

:class:`TimeoutPool` stores such waits as NumPy arrays instead: deadlines
live in a float64 buffer (singletons) or in caller-provided ascending
arrays (sequences), and the pool keeps exactly *one* sentinel event in the
owning simulator's heap — armed at the earliest pooled deadline.  When the
sentinel fires, every entry due at that timestamp is drained in one batch.
Fired and cancelled singleton slots are compacted away periodically, so a
long-lived pool stays proportional to its *live* entries.

Determinism: within one drain, sequence chunks fire first (in chunk
insertion order), then singleton entries (in insertion order).  Entries
never fire before their deadline, and the pool never holds the clock back:
the sentinel is an ordinary kernel event, so pooled callbacks interleave
with heap events at the same timestamp according to the sentinel's own
``(priority, seq)`` position.
"""

from __future__ import annotations

import heapq
import itertools
from collections.abc import Callable
from typing import TYPE_CHECKING, Any

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.simkernel.simulator import Simulator

#: ``fire(lo, hi, t)`` — entries ``[lo, hi)`` of the chunk's time array are due at ``t``.
SequenceFire = Callable[[int, int, float], None]

_ARMED = 1
_FIRED = 2
_CANCELLED = 3


class PooledTimeout:
    """Cancellable handle for one singleton pool entry."""

    __slots__ = ("_pool", "_index", "_final")

    def __init__(self, pool: TimeoutPool, index: int) -> None:
        self._pool = pool
        self._index = index
        self._final: int | None = None  # terminal state once resolved

    @property
    def cancelled(self) -> bool:
        """Whether this entry was cancelled before firing."""
        return self._final == _CANCELLED

    @property
    def fired(self) -> bool:
        """Whether this entry's callback has already run."""
        return self._final == _FIRED

    def cancel(self) -> None:
        """Remove the entry from the pool.  Idempotent; no-op after firing."""
        if self._final is None:
            self._pool._cancel(self._index)


class RecurringTimeout:
    """Cancellable handle for a recurring pooled tick.

    Each fire re-registers the next tick at ``fire_time + interval`` — the
    same ``now + delay`` accumulation a generator looping over
    ``yield Timeout(interval)`` produces, so replacing N lock-step polling
    processes with one recurring pool entry leaves every tick timestamp
    bit-identical.
    """

    __slots__ = ("_pool", "interval", "_callback", "_args", "_entry", "_cancelled")

    def __init__(
        self, pool: TimeoutPool, interval: float, callback: Callable[..., Any], args: tuple
    ) -> None:
        self._pool = pool
        self.interval = float(interval)
        self._callback = callback
        self._args = args
        self._entry: PooledTimeout | None = None
        self._cancelled = False

    @property
    def cancelled(self) -> bool:
        """Whether the recurrence has been stopped."""
        return self._cancelled

    def cancel(self) -> None:
        """Stop ticking.  Idempotent; safe to call from inside the callback."""
        self._cancelled = True
        if self._entry is not None:
            self._entry.cancel()
            self._entry = None

    def _arm(self, time: float) -> None:
        self._entry = self._pool.add_at(time, self._fire)

    def _fire(self) -> None:
        self._entry = None
        if self._cancelled:
            return
        self._callback(*self._args)
        if not self._cancelled:
            self._arm(self._pool.sim.now + self.interval)


class _SequenceChunk:
    """One bulk-registered ascending run of deadlines."""

    __slots__ = ("times", "fire", "cursor")

    def __init__(self, times: np.ndarray, fire: SequenceFire) -> None:
        self.times = times
        self.fire = fire
        self.cursor = 0

    @property
    def next_time(self) -> float:
        return float(self.times[self.cursor])

    @property
    def remaining(self) -> int:
        return len(self.times) - self.cursor


class TimeoutPool:
    """Pool of timeouts backed by one sentinel event in the kernel heap.

    Parameters
    ----------
    sim:
        Owning simulator; the pool schedules its sentinel there.
    name:
        Label for debugging.
    """

    _INITIAL_CAPACITY = 64
    #: Compact singleton buffers once they reach this size and at least
    #: half the slots are dead (fired or cancelled).
    _COMPACT_THRESHOLD = 256

    def __init__(self, sim: Simulator, name: str = "timeout-pool") -> None:
        self.sim = sim
        self.name = name
        # Singleton entries: parallel NumPy buffers + payload/handle lists.
        self._times = np.empty(self._INITIAL_CAPACITY, dtype=np.float64)
        self._state = np.zeros(self._INITIAL_CAPACITY, dtype=np.int8)
        self._payloads: list[tuple[Callable[..., Any], tuple] | None] = [None] * self._INITIAL_CAPACITY
        self._handles: list[PooledTimeout | None] = [None] * self._INITIAL_CAPACITY
        self._count = 0
        self._dead = 0
        # Sequence chunks: a small heap keyed by each chunk's next deadline.
        self._chunk_heap: list[tuple[float, int, _SequenceChunk]] = []
        self._chunk_seq = itertools.count()
        self._sentinel = None  # kernel Event currently armed, if any
        self._live = 0

    # ------------------------------------------------------------------
    # registration
    # ------------------------------------------------------------------
    def add(self, delay: float, callback: Callable[..., Any], *args: Any) -> PooledTimeout:
        """Pool ``callback(*args)`` to fire after ``delay``; return a handle."""
        if delay < 0:
            raise ValueError(f"delay must be >= 0, got {delay!r}")
        return self.add_at(self.sim.now + delay, callback, *args)

    def add_at(self, time: float, callback: Callable[..., Any], *args: Any) -> PooledTimeout:
        """Pool ``callback(*args)`` at absolute simulated ``time``."""
        if time < self.sim.now:
            raise ValueError(f"cannot pool a timeout in the past: {time!r} < {self.sim.now!r}")
        if self._count == len(self._times):
            self._grow()
        index = self._count
        handle = PooledTimeout(self, index)
        self._times[index] = time
        self._state[index] = _ARMED
        self._payloads[index] = (callback, args)
        self._handles[index] = handle
        self._count += 1
        self._live += 1
        self._arm(time)
        return handle

    def add_sequence(self, times: np.ndarray, fire: SequenceFire) -> None:
        """Register an ascending run of deadlines drained in vectorized slices.

        ``times`` must be a non-decreasing float array of absolute simulated
        times, none in the past.  When a timestamp ``t`` comes due, the pool
        calls ``fire(lo, hi, t)`` once for the contiguous slice of entries
        equal to ``t`` — the caller loops (or vectorizes) over its own
        per-entry payloads for that slice.
        """
        times = np.ascontiguousarray(times, dtype=np.float64)
        if times.size == 0:
            return
        if np.any(np.diff(times) < 0):
            raise ValueError("sequence times must be non-decreasing")
        if times[0] < self.sim.now:
            raise ValueError(f"sequence starts in the past: {times[0]!r} < {self.sim.now!r}")
        chunk = _SequenceChunk(times, fire)
        heapq.heappush(self._chunk_heap, (chunk.next_time, next(self._chunk_seq), chunk))
        self._live += times.size
        self._arm(chunk.next_time)

    def add_recurring(
        self,
        interval: float,
        callback: Callable[..., Any],
        *args: Any,
        first_at: float | None = None,
    ) -> RecurringTimeout:
        """Fire ``callback(*args)`` every ``interval`` until cancelled.

        The first fire is at ``first_at`` (default ``now + interval``);
        subsequent ticks accumulate as ``fire_time + interval``.  Returns a
        :class:`RecurringTimeout` handle whose ``cancel()`` stops the
        recurrence — including from within the callback itself.
        """
        if interval <= 0:
            raise ValueError(f"interval must be positive, got {interval!r}")
        handle = RecurringTimeout(self, interval, callback, args)
        handle._arm(self.sim.now + interval if first_at is None else float(first_at))
        return handle

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    @property
    def pending(self) -> int:
        """Entries still waiting to fire (singletons + sequence tails)."""
        return self._live

    def next_deadline(self) -> float | None:
        """Earliest pending deadline across singletons and chunks."""
        candidates = []
        if self._chunk_heap:
            candidates.append(self._chunk_heap[0][0])
        if self._count:
            armed = self._state[: self._count] == _ARMED
            if armed.any():
                candidates.append(float(self._times[: self._count][armed].min()))
        return min(candidates) if candidates else None

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _grow(self) -> None:
        new_cap = 2 * len(self._times)
        times = np.empty(new_cap, dtype=np.float64)
        times[: self._count] = self._times[: self._count]
        state = np.zeros(new_cap, dtype=np.int8)
        state[: self._count] = self._state[: self._count]
        self._times = times
        self._state = state
        self._payloads.extend([None] * (new_cap - len(self._payloads)))
        self._handles.extend([None] * (new_cap - len(self._handles)))

    def _cancel(self, index: int) -> None:
        if self._state[index] == _ARMED:
            self._state[index] = _CANCELLED
            self._payloads[index] = None
            handle = self._handles[index]
            if handle is not None:
                handle._final = _CANCELLED
            self._handles[index] = None
            self._live -= 1
            self._dead += 1

    def _compact(self) -> None:
        """Drop fired/cancelled singleton slots, remapping live handles."""
        keep = np.nonzero(self._state[: self._count] == _ARMED)[0]
        new_count = len(keep)
        self._times[:new_count] = self._times[keep]
        self._state[:new_count] = _ARMED
        self._state[new_count : self._count] = 0
        payloads = self._payloads
        handles = self._handles
        for new_index, old_index in enumerate(keep):
            payloads[new_index] = payloads[old_index]
            handle = handles[old_index]
            handles[new_index] = handle
            if handle is not None:
                handle._index = new_index
        for index in range(new_count, self._count):
            payloads[index] = None
            handles[index] = None
        self._count = new_count
        self._dead = 0

    def _arm(self, deadline: float) -> None:
        sentinel = self._sentinel
        if sentinel is not None and not sentinel.cancelled:
            if sentinel.time <= deadline:
                return
            self.sim.cancel(sentinel)
        self._sentinel = self.sim.schedule_at(deadline, self._drain)

    def _drain(self) -> None:
        self._sentinel = None
        now = self.sim.now
        # 1. sequence chunks due now, in (deadline, insertion) order.
        heap = self._chunk_heap
        while heap and heap[0][0] == now:
            _, seq, chunk = heapq.heappop(heap)
            lo = chunk.cursor
            hi = lo + int(np.searchsorted(chunk.times[lo:], now, side="right"))
            chunk.cursor = hi
            self._live -= hi - lo
            chunk.fire(lo, hi, now)
            if chunk.remaining:
                heapq.heappush(heap, (chunk.next_time, seq, chunk))
        # 2. singleton entries due now, in insertion order.
        if self._count:
            view = self._times[: self._count]
            due = np.nonzero((self._state[: self._count] == _ARMED) & (view == now))[0]
            for index in due:
                # A callback fired earlier in this drain may have cancelled us.
                if self._state[index] != _ARMED:
                    continue
                callback, args = self._payloads[index]
                self._state[index] = _FIRED
                self._payloads[index] = None
                handle = self._handles[index]
                if handle is not None:
                    handle._final = _FIRED
                self._handles[index] = None
                self._live -= 1
                self._dead += 1
                callback(*args)
            if self._count >= self._COMPACT_THRESHOLD and 2 * self._dead >= self._count:
                self._compact()
        # 3. re-arm at the next pending deadline, if any.
        next_deadline = self.next_deadline()
        if next_deadline is not None:
            self._arm(next_deadline)

    def __repr__(self) -> str:
        return f"TimeoutPool({self.name!r}, pending={self._live})"
