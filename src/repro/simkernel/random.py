"""Deterministic named random streams.

Every stochastic component in SimDC (each virtual phone's noise, each
DeviceFlow dropout draw, every dataset shard) pulls from its own named
stream derived from one master seed.  Streams are independent of creation
order: the same ``(seed, name)`` pair always yields the same generator, so
adding a new component never perturbs existing ones.
"""

from __future__ import annotations

import hashlib

import numpy as np


def stable_hash(text: str) -> tuple[int, int, int, int]:
    """Hash ``text`` to four uint32 words, stable across runs and platforms.

    Python's built-in ``hash`` is salted per process, so it cannot be used
    for reproducible stream derivation; SHA-256 is used instead.
    """
    digest = hashlib.sha256(text.encode()).digest()
    return tuple(int.from_bytes(digest[i : i + 4], "little") for i in range(0, 16, 4))  # type: ignore[return-value]


class RandomStreams:
    """A factory of independent, reproducible ``numpy`` generators.

    Parameters
    ----------
    seed:
        Master seed for the whole simulation run.

    Example
    -------
    >>> streams = RandomStreams(7)
    >>> a = streams.get("phone.0").integers(0, 100, 3)
    >>> b = RandomStreams(7).get("phone.0").integers(0, 100, 3)
    >>> (a == b).all()
    np.True_
    """

    def __init__(self, seed: int = 0) -> None:
        self.seed = int(seed)
        self._cache: dict[str, np.random.Generator] = {}

    def get(self, name: str) -> np.random.Generator:
        """Return the generator for ``name``, creating it on first use.

        Repeated calls with the same name return the *same* generator
        object, so consumption of randomness is shared within a component.
        Use :meth:`fresh` for an independent copy that restarts the stream.
        """
        if name not in self._cache:
            self._cache[name] = self.fresh(name)
        return self._cache[name]

    def fresh(self, name: str) -> np.random.Generator:
        """Return a brand-new generator positioned at the stream's start."""
        words = stable_hash(name)
        sequence = np.random.SeedSequence(entropy=(self.seed, *words))
        return np.random.default_rng(sequence)

    def spawn(self, prefix: str, count: int) -> list[np.random.Generator]:
        """Create ``count`` generators named ``{prefix}.{i}``."""
        return [self.get(f"{prefix}.{i}") for i in range(count)]

    def reset(self) -> None:
        """Forget all cached generators (streams restart on next use)."""
        self._cache.clear()
