"""The simulation event loop."""

from __future__ import annotations

from collections.abc import Callable, Generator
from typing import Any

from repro.simkernel.events import Event, EventQueue
from repro.simkernel.processes import Process, ProcessError


class Simulator:
    """Owns the simulated clock and drives events and processes.

    All SimDC components share one ``Simulator``; simulated time only
    advances inside :meth:`run` / :meth:`run_until` / :meth:`step` /
    :meth:`step_batch`.

    Parameters
    ----------
    start_time:
        Initial clock value (seconds by convention throughout SimDC).
    strict:
        When true (default), an exception escaping a process that no other
        process is waiting on aborts the run with :class:`ProcessError`.
        When false such failures are recorded in :attr:`orphan_failures`.
    """

    def __init__(self, start_time: float = 0.0, strict: bool = True) -> None:
        self.now = float(start_time)
        self.strict = strict
        self.orphan_failures: list[tuple[Process, BaseException]] = []
        self._queue = EventQueue()
        self._pending_error: ProcessError | None = None

    # ------------------------------------------------------------------
    # scheduling primitives
    # ------------------------------------------------------------------
    def schedule(self, delay: float, callback: Callable[..., Any], *args: Any, priority: int = 0) -> Event:
        """Schedule ``callback(*args)`` after ``delay`` time units.

        The callback and its arguments are stored as a ``(callback, args)``
        pair on the :class:`Event` — no per-event closure is allocated.
        """
        if delay < 0:
            raise ValueError(f"delay must be >= 0, got {delay!r}")
        return self._queue.push(self.now + delay, callback, args, priority=priority)

    def schedule_at(self, time: float, callback: Callable[..., Any], *args: Any, priority: int = 0) -> Event:
        """Schedule ``callback(*args)`` at absolute simulated ``time``."""
        if time < self.now:
            raise ValueError(f"cannot schedule in the past: {time!r} < now {self.now!r}")
        return self._queue.push(time, callback, args, priority=priority)

    def cancel(self, event: Event) -> None:
        """Cancel a scheduled event."""
        self._queue.cancel(event)

    def process(self, generator: Generator, name: str = "") -> Process:
        """Start a generator as a process on the next event-loop step."""
        proc = Process(self, generator, name=name)
        self.schedule(0.0, proc._start)
        return proc

    # ------------------------------------------------------------------
    # event loop
    # ------------------------------------------------------------------
    def step(self) -> bool:
        """Process the single earliest event.  Return False if queue empty."""
        event = self._queue.pop()
        if event is None:
            return False
        if event.time < self.now:
            raise RuntimeError("event queue produced an event in the past")
        self.now = event.time
        event.callback(*event.args)
        self._raise_pending()
        return True

    def step_batch(self) -> int:
        """Drain every event sharing the earliest ``(time, priority)`` at once.

        Returns the number of events fired (0 when the queue is empty).
        Firing order within the batch is identical to repeated :meth:`step`
        calls; events cancelled by an earlier callback of the same batch
        are skipped.  Events that a callback schedules at the current
        timestamp land in the *next* batch, which preserves one-at-a-time
        ordering for same-or-higher priority numbers (the kernel-wide
        convention; see ``EventQueue.pop_batch``).
        """
        batch = self._queue.pop_batch()
        if not batch:
            return 0
        time = batch[0].time
        if time < self.now:
            raise RuntimeError("event queue produced an event in the past")
        self.now = time
        fired = 0
        for event in batch:
            if event.cancelled:
                continue
            event.callback(*event.args)
            fired += 1
        self._raise_pending()
        return fired

    def run(self, until: float | None = None, *, batch: bool = False) -> float:
        """Run until the queue drains or the clock would pass ``until``.

        Returns the clock value when the loop stops.  With ``until`` set,
        the clock is advanced to exactly ``until`` if the queue drains (or
        only holds later events), mirroring SimPy semantics so callers can
        chain ``run`` segments.

        With ``batch=True`` the loop drains same-timestamp events in
        batches (:meth:`step_batch`), which is substantially faster for
        workloads where many entities act in lock-step waves (the Fig. 8
        scalability sweeps).  Results are identical for simulations that
        follow the kernel's priority conventions.
        """
        if until is not None and until < self.now:
            raise ValueError(f"until={until!r} is in the past (now={self.now!r})")
        queue = self._queue
        if batch:
            while True:
                next_time = queue.peek_time()
                if next_time is None:
                    break
                if until is not None and next_time > until:
                    break
                self.step_batch()
        else:
            while True:
                next_time = queue.peek_time()
                if next_time is None:
                    break
                if until is not None and next_time > until:
                    break
                self.step()
        if until is not None:
            self.now = max(self.now, until)
        return self.now

    def run_until(
        self,
        predicate: Callable[[], bool],
        max_time: float | None = None,
        *,
        batch: bool = False,
    ) -> float:
        """Step until ``predicate()`` is true; optionally bound by time.

        Raises ``TimeoutError`` if ``max_time`` is exceeded or the queue
        drains before the predicate holds.  With ``batch=True`` the loop
        drains same-timestamp events through :meth:`step_batch` (the fast
        path large scenario runs ride); the predicate is then evaluated at
        batch boundaries, so it may observe a state a few same-timestamp
        events later than the per-event loop would — identical simulated
        results, coarser stopping granularity.
        """
        step = self.step_batch if batch else self.step
        while not predicate():
            next_time = self._queue.peek_time()
            if next_time is None:
                raise TimeoutError("event queue drained before predicate became true")
            if max_time is not None and next_time > max_time:
                raise TimeoutError(f"predicate still false at max_time={max_time!r}")
            step()
        return self.now

    @property
    def pending_events(self) -> int:
        """Number of live (non-cancelled) events still queued."""
        return len(self._queue)

    # ------------------------------------------------------------------
    # failure handling
    # ------------------------------------------------------------------
    def _report_orphan_failure(self, process: Process, error: BaseException) -> None:
        self.orphan_failures.append((process, error))
        if self.strict:
            wrapped = ProcessError(f"process {process.name!r} failed with {error!r}")
            wrapped.__cause__ = error
            self._pending_error = wrapped

    def _raise_pending(self) -> None:
        if self._pending_error is not None:
            error, self._pending_error = self._pending_error, None
            raise error
