"""SimDC: a high-fidelity device simulation platform for device-cloud
collaborative computing.

Reproduction of *SimDC: A High-Fidelity Device Simulation Platform for
Device-Cloud Collaborative Computing* (ICDCS 2025).  The platform combines

* a **logical simulation tier** (a Ray-on-Kubernetes-like actor cluster)
  for cheap large-scale functional testing,
* a **device simulation tier** (virtual Android phones behind a simulated
  ADB, managed by PhoneMgr) yielding physical performance metrics —
  power, CPU, memory, bandwidth — during training,
* a **hybrid allocation optimizer** splitting each task's simulated
  devices across the tiers to minimise makespan, and
* **DeviceFlow**, a programmable traffic controller shaping edge→cloud
  message streams with threshold, time-point and rate-curve strategies
  plus dropout simulation.

Quickstart::

    from repro import SimDC, TaskSpec, GradeRequirement, ResourceBundle

    platform = SimDC()
    task = TaskSpec(
        name="demo",
        grades=[GradeRequirement(grade="High", n_devices=20, bundles=40,
                                 n_phones=2,
                                 device_bundle=ResourceBundle(4, 12))],
        rounds=3,
        feature_dim=512,
    )
    platform.submit(task)
    platform.run_until_idle()
    print(platform.result(task.task_id).rounds[-1].test_accuracy)
"""

from repro.cluster.resources import NodeSpec, ResourceBundle
from repro.core.config import PlatformConfig
from repro.core.platform import SimDC
from repro.deviceflow.strategy import (
    RealTimeAccumulatedStrategy,
    TimeIntervalStrategy,
    TimePoint,
    TimePointStrategy,
)
from repro.scheduler.task import GradeRequirement, TaskSpec, TaskState

__version__ = "1.0.0"

__all__ = [
    "GradeRequirement",
    "NodeSpec",
    "PlatformConfig",
    "RealTimeAccumulatedStrategy",
    "ResourceBundle",
    "SimDC",
    "TaskSpec",
    "TaskState",
    "TimeIntervalStrategy",
    "TimePoint",
    "TimePointStrategy",
    "__version__",
]
