"""End-to-end task tracing: deterministic sim-time span trees.

The paper's GUI promise — operators "monitor various computational
metrics, edge device performance, and updates to cloud services
throughout the task execution process" (§III-C) — needs more than
aggregate KPIs: it needs *one task's journey* through the platform.
This module assembles that journey as a span tree per task:

    task
    ├── queue_wait            (submission → scheduler grant)
    ├── dispatch              (grant → runner start)
    └── round r
        ├── wave w (grade)    (derived: devices sharing a completion time)
        │   └── device_round  (round start → upload completion)
        │       ├── upload    (transport attempt chain: retries/drops)
        │       └── flow      (DeviceFlow shelve → dispatcher delivery)
        ├── bench_stage ×5    (the Table-I five-stage phone protocol)
        ├── ingest_drop       (dedup/late rejections at the cloud gate)
        └── aggregate         (the round's FedAvg fold)

Spans live entirely on the *simulated* clock and every span id is a
deterministic function of ``(task, round, device, kind)``, so two runs
of the same spec and seed — batched or legacy — produce byte-identical
traces.  Recording is two-phase to keep the simulation hot path clean:

* :class:`Tracer` — append-only capture.  Instrumentation points in the
  task runner, transport channel, ingestion sink, DeviceFlow and the
  phone manager call ``record_*`` methods that append plain tuples (or,
  for batched plans, one reference to the whole columnar block); nothing
  is formatted, sorted or allocated per span while the simulation runs.
  Every instrumentation point is guarded by ``tracer is not None``, so
  an untraced run executes exactly the code it executed before tracing
  existed — zero cost when off, and byte-identical reports when on
  (recording never touches a random stream or the event queue).
* :func:`assemble_trace` — post-run distillation of the Tracer's capture
  plus the :class:`~repro.cloud.monitor.Monitor` event log (task
  lifecycle, per-round transport KPIs) into a sorted :class:`Trace`.

Wave spans are *derived*, not recorded: a wave is the set of a round's
devices sharing ``(grade, finished_at)``, which is identical whether
the run computed those times via the wave-scheduled cumsum or the
per-device generator chain — so batched and legacy span trees agree by
construction.
"""

from __future__ import annotations

import json
from collections import defaultdict
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any

if TYPE_CHECKING:  # pragma: no cover - typing only
    from collections.abc import Callable

    from repro.cloud.monitor import Monitor
    from repro.cluster.runner import ColumnarOutcomes

#: Every span kind the assembler can emit, with the tree level it lives
#: at (documentation + the README reference table; exporters use it to
#: pick renderable categories).
SPAN_KINDS = {
    "task": "root: one scheduled task, submission to completion",
    "queue_wait": "task child: submission → scheduler resource grant",
    "dispatch": "task child: resource grant → runner start",
    "round": "task child: one collaboration round, start → aggregation",
    "wave": "round child: devices sharing one (grade, completion-time)",
    "device_round": "wave child: one device's train+upload leg",
    "upload": "device child: transport attempt chain (retries, drops)",
    "flow": "device child: DeviceFlow shelve → dispatcher delivery",
    "bench_stage": "round child: one Table-I benchmark-phone stage",
    "ingest_drop": "round child (instant): dedup/late gate rejection",
    "aggregate": "round child (instant): the round's FedAvg fold",
}

#: Terminal states an ``upload`` span can report.
UPLOAD_STATUSES = ("delivered", "late", "abandoned")


@dataclass
class Span:
    """One sim-time interval in a task's journey.

    ``span_id`` is stable across runs — a pure function of the task id,
    round index, device id and kind — so differential tests can compare
    whole traces bytewise.  Instant events are spans with ``end ==
    start``.
    """

    span_id: str
    parent_id: str | None
    name: str
    kind: str
    start: float
    end: float
    attrs: dict[str, Any] = field(default_factory=dict)

    @property
    def duration(self) -> float:
        return self.end - self.start

    def to_dict(self) -> dict[str, Any]:
        return {
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "name": self.name,
            "kind": self.kind,
            "start": self.start,
            "end": self.end,
            "attrs": self.attrs,
        }


class Trace:
    """A finished run's span tree, sorted and queryable."""

    def __init__(self, name: str, spans: list[Span]) -> None:
        self.name = name
        #: Sorted by ``(start, span_id)`` — a total, deterministic order.
        self.spans = sorted(spans, key=lambda s: (s.start, s.span_id))
        self._by_id = {span.span_id: span for span in self.spans}
        if len(self._by_id) != len(self.spans):
            seen: set[str] = set()
            dupes = {s.span_id for s in self.spans if s.span_id in seen or seen.add(s.span_id)}
            raise ValueError(f"duplicate span ids in trace: {sorted(dupes)[:5]}")

    def __len__(self) -> int:
        return len(self.spans)

    def __iter__(self):
        return iter(self.spans)

    def span(self, span_id: str) -> Span:
        return self._by_id[span_id]

    def of_kind(self, kind: str) -> list[Span]:
        return [span for span in self.spans if span.kind == kind]

    def children(self, span_id: str) -> list[Span]:
        return [span for span in self.spans if span.parent_id == span_id]

    def counts_by_kind(self) -> dict[str, int]:
        counts: dict[str, int] = {}
        for span in self.spans:
            counts[span.kind] = counts.get(span.kind, 0) + 1
        return counts

    def to_dict(self) -> dict[str, Any]:
        return {"name": self.name, "spans": [span.to_dict() for span in self.spans]}

    def to_json(self) -> str:
        """Deterministic rendering (sorted keys, no whitespace drift)."""
        return json.dumps(self.to_dict(), sort_keys=True, separators=(",", ":"))


class Tracer:
    """Append-only capture of a run's trace records.

    One Tracer serves one platform run.  The record methods are the
    whole hot-path surface: each appends one plain tuple (or one block
    reference) to a list.  Everything else — span construction, wave
    derivation, sorting — happens once, after the run, in
    :func:`assemble_trace`.
    """

    def __init__(self) -> None:
        #: (task, device, grade, round, n_samples, payload_bytes, finished_at)
        self.devices: list[tuple[str, str, str, int, int, int, float]] = []
        #: (task, block) — whole batched plans, expanded at assembly.
        self.device_blocks: list[tuple[str, ColumnarOutcomes]] = []
        #: (task, round, time)
        self.round_starts: list[tuple[str, int, float]] = []
        self.round_ends: list[tuple[str, int, float]] = []
        #: (task, round, time, n_updates, test_accuracy)
        self.folds: list[tuple[str, int, float, int, float | None]] = []
        #: (task, device, round, t0, arrival-or-None, retries, duplicate, status)
        self.uploads: list[tuple[str, str, int, float, float | None, int, bool, str]] = []
        #: (task, device, round, time, reason) — reason: duplicate | late
        self.ingest_drops: list[tuple[str, str, int, float, str]] = []
        #: (task, device, round, time)
        self.flow_submits: list[tuple[str, str, int, float]] = []
        self.flow_deliveries: list[tuple[str, str, int, float]] = []
        #: (task, serial, device, round, stage, start, end)
        self.bench_stages: list[tuple[str, str, str, int, str, float, float]] = []

    # -- hot-path record methods (append one tuple each) ----------------
    def record_device(
        self,
        task_id: str,
        device_id: str,
        grade: str,
        round_index: int,
        n_samples: int,
        payload_bytes: int,
        finished_at: float,
    ) -> None:
        self.devices.append(
            (task_id, device_id, grade, round_index, n_samples, payload_bytes, finished_at)
        )

    def record_block(self, task_id: str, block: ColumnarOutcomes) -> None:
        """O(1) capture of a whole batched plan's round."""
        self.device_blocks.append((task_id, block))

    def record_round_start(self, task_id: str, round_index: int, time: float) -> None:
        self.round_starts.append((task_id, round_index, time))

    def record_round_end(self, task_id: str, round_index: int, time: float) -> None:
        self.round_ends.append((task_id, round_index, time))

    def record_fold(
        self,
        task_id: str,
        round_index: int,
        time: float,
        n_updates: int,
        test_accuracy: float | None,
    ) -> None:
        self.folds.append((task_id, round_index, time, n_updates, test_accuracy))

    def record_upload(
        self,
        task_id: str,
        device_id: str,
        round_index: int,
        t0: float,
        arrival: float | None,
        retries: int,
        duplicate: bool,
        status: str,
    ) -> None:
        self.uploads.append(
            (task_id, device_id, round_index, t0, arrival, retries, duplicate, status)
        )

    def record_ingest_drop(
        self, task_id: str, device_id: str, round_index: int, time: float, reason: str
    ) -> None:
        self.ingest_drops.append((task_id, device_id, round_index, time, reason))

    def record_flow_submit(
        self, task_id: str, device_id: str, round_index: int, time: float
    ) -> None:
        self.flow_submits.append((task_id, device_id, round_index, time))

    def record_flow_delivery(
        self, task_id: str, device_id: str, round_index: int, time: float
    ) -> None:
        self.flow_deliveries.append((task_id, device_id, round_index, time))

    def record_bench_stage(
        self,
        task_id: str,
        serial: str,
        device_id: str,
        round_index: int,
        stage: str,
        start: float,
        end: float,
    ) -> None:
        self.bench_stages.append((task_id, serial, device_id, round_index, stage, start, end))

    # ------------------------------------------------------------------
    def all_devices(self) -> list[tuple[str, str, str, int, int, int, float]]:
        """Scalar device records plus expanded columnar blocks."""
        records = list(self.devices)
        for task_id, block in self.device_blocks:
            grade = block.plan.grade
            payload = block.payload_bytes
            round_index = block.round_index
            finished = block.finished_at
            for position, assignment in enumerate(block.plan.assignments):
                records.append(
                    (
                        task_id,
                        assignment.device_id,
                        grade,
                        round_index,
                        assignment.n_samples,
                        payload,
                        float(finished[position]),
                    )
                )
        return records


# ----------------------------------------------------------------------
# assembly
# ----------------------------------------------------------------------
def _span_id(task_id: str, *parts: Any) -> str:
    return "/".join([f"t:{task_id}", *map(str, parts)])


def assemble_trace(
    monitor: Monitor,
    tracer: Tracer,
    name: str = "run",
    tenant_of: Callable[[str], str] | None = None,
) -> Trace:
    """Distil a finished run's capture into a :class:`Trace`.

    ``monitor`` supplies the task lifecycle (submitted / scheduled /
    started / completed / failed) and the per-round ``transport_round``
    KPI events that annotate round spans; ``tracer`` supplies everything
    device-level.  ``tenant_of`` maps a task id to its tenant (the
    scenario runner's convention) — the tenant lands in the task span's
    attrs so span identity is effectively ``(tenant, task, round,
    device, kind)``.
    """
    spans: list[Span] = []

    # -- task lifecycle from the Monitor's per-kind index ---------------
    submitted = {e.fields["task_id"]: e.time for e in monitor.of_kind("task_submitted")}
    scheduled = {e.fields["task_id"]: e.time for e in monitor.of_kind("task_scheduled")}
    started = {e.fields["task_id"]: e.time for e in monitor.of_kind("task_started")}
    completed = {e.fields["task_id"]: e.time for e in monitor.of_kind("task_completed")}
    failed = {e.fields["task_id"]: e.time for e in monitor.of_kind("task_failed")}

    round_starts: dict[tuple[str, int], float] = {
        (task, index): time for task, index, time in tracer.round_starts
    }
    round_ends: dict[tuple[str, int], float] = {
        (task, index): time for task, index, time in tracer.round_ends
    }
    devices = tracer.all_devices()

    # Tasks come from every source that can name one: traced tasks with
    # no monitor (a bare TaskRunner) still get a root span.
    task_ids = sorted(
        set(submitted)
        | set(started)
        | {task for task, _index, _time in tracer.round_starts}
        | {record[0] for record in devices}
    )

    device_end_by_task: dict[str, float] = defaultdict(float)
    for record in devices:
        task = record[0]
        device_end_by_task[task] = max(device_end_by_task[task], record[6])

    task_span_ids: dict[str, str] = {}
    round_span_ids: dict[tuple[str, int], str] = {}
    round_spans: dict[tuple[str, int], Span] = {}
    for task in task_ids:
        t_submit = submitted.get(task)
        t_sched = scheduled.get(task)
        t_start = started.get(task)
        t_end = completed.get(task, failed.get(task))
        rounds_of_task = sorted(k[1] for k in round_starts if k[0] == task)
        first = min(
            (t for t in (t_submit, t_start) if t is not None),
            default=round_starts.get((task, rounds_of_task[0])) if rounds_of_task else 0.0,
        )
        if t_end is None:
            t_end = max(
                device_end_by_task.get(task, first),
                max((round_ends.get((task, r), first) for r in rounds_of_task), default=first),
            )
        root_id = _span_id(task)
        task_span_ids[task] = root_id
        status = "failed" if task in failed else ("completed" if task in completed else "open")
        attrs: dict[str, Any] = {"task": task, "status": status}
        if tenant_of is not None:
            attrs["tenant"] = tenant_of(task)
        spans.append(
            Span(root_id, None, task, "task", first, t_end, attrs)
        )
        if t_submit is not None and t_sched is not None:
            spans.append(
                Span(
                    _span_id(task, "queue"),
                    root_id,
                    "queue wait",
                    "queue_wait",
                    t_submit,
                    t_sched,
                    {"task": task},
                )
            )
        if t_sched is not None and t_start is not None:
            spans.append(
                Span(
                    _span_id(task, "dispatch"),
                    root_id,
                    "dispatch",
                    "dispatch",
                    t_sched,
                    t_start,
                    {"task": task},
                )
            )

        # -- rounds ------------------------------------------------------
        for round_index in rounds_of_task:
            r_start = round_starts[(task, round_index)]
            r_end = round_ends.get((task, round_index), r_start)
            round_id = _span_id(task, f"r{round_index}")
            round_span_ids[(task, round_index)] = round_id
            round_span = Span(
                round_id,
                root_id,
                f"round {round_index}",
                "round",
                r_start,
                r_end,
                {"task": task, "round": round_index},
            )
            round_spans[(task, round_index)] = round_span
            spans.append(round_span)

    # Per-round transport KPIs (monitor events) annotate round spans.
    # ``count_kind`` is O(1): lossless runs skip the annotation loop
    # without building a view.
    transport_events = (
        monitor.of_kind("transport_round") if monitor.count_kind("transport_round") else ()
    )
    for event in transport_events:
        key = (event.fields["task_id"], event.fields["round"])
        round_span = round_spans.get(key)
        if round_span is None:
            continue
        round_span.attrs["transport"] = {
            k: event.fields[k]
            for k in ("uploads", "delivered", "retries", "duplicates", "late", "abandoned")
        }

    # -- aggregation folds ----------------------------------------------
    for task, round_index, time, n_updates, accuracy in tracer.folds:
        round_id = round_span_ids.get((task, round_index))
        attrs = {"task": task, "round": round_index, "n_updates": n_updates}
        if accuracy is not None:
            attrs["test_accuracy"] = accuracy
        spans.append(
            Span(
                _span_id(task, f"r{round_index}", "aggregate"),
                round_id,
                "aggregate",
                "aggregate",
                time,
                time,
                attrs,
            )
        )

    # -- waves (derived) and device spans -------------------------------
    # A wave is a round's devices sharing (grade, finished_at): equal in
    # the batched cumsum and the legacy generator chain by the platform's
    # bit-identity contract, so both paths derive the same wave spans.
    by_round: dict[tuple[str, int], list[tuple]] = defaultdict(list)
    for record in devices:
        by_round[(record[0], record[3])].append(record)
    device_span_ids: set[str] = set()
    for (task, round_index), records in sorted(by_round.items()):
        round_id = round_span_ids.get((task, round_index))
        r_start = round_starts.get((task, round_index), min(r[6] for r in records))
        waves: dict[tuple[str, float], list[tuple]] = defaultdict(list)
        for record in records:
            waves[(record[2], record[6])].append(record)
        previous_end: dict[str, float] = {}
        wave_index: dict[str, int] = {}
        for grade, finished in sorted(waves):
            index = wave_index.get(grade, 0)
            wave_index[grade] = index + 1
            wave_id = _span_id(task, f"r{round_index}", grade, f"w{index}")
            members = waves[(grade, finished)]
            spans.append(
                Span(
                    wave_id,
                    round_id,
                    f"{grade} wave {index}",
                    "wave",
                    previous_end.get(grade, r_start),
                    finished,
                    {
                        "task": task,
                        "round": round_index,
                        "grade": grade,
                        "n_devices": len(members),
                    },
                )
            )
            previous_end[grade] = finished
            for _task, device, grade_, _round, n_samples, payload, finished_at in members:
                device_span_ids.add(_span_id(task, f"r{round_index}", f"d:{device}"))
                spans.append(
                    Span(
                        _span_id(task, f"r{round_index}", f"d:{device}"),
                        wave_id,
                        device,
                        "device_round",
                        r_start,
                        finished_at,
                        {
                            "task": task,
                            "round": round_index,
                            "device": device,
                            "grade": grade_,
                            "n_samples": n_samples,
                            "payload_bytes": payload,
                        },
                    )
                )

    # -- transport upload chains ----------------------------------------
    for task, device, round_index, t0, arrival, retries, duplicate, status in sorted(
        tracer.uploads
    ):
        device_id = _span_id(task, f"r{round_index}", f"d:{device}")
        parent = device_id if device_id in device_span_ids else None
        end = arrival if arrival is not None else t0
        spans.append(
            Span(
                _span_id(task, f"r{round_index}", f"d:{device}", "upload"),
                parent,
                "upload",
                "upload",
                t0,
                end,
                {
                    "task": task,
                    "round": round_index,
                    "device": device,
                    "retries": retries,
                    "duplicate": duplicate,
                    "status": status,
                },
            )
        )

    # -- ingestion-gate drops -------------------------------------------
    occurrence: dict[tuple, int] = defaultdict(int)
    for task, device, round_index, time, reason in sorted(tracer.ingest_drops):
        key = (task, device, round_index, reason)
        suffix = f"drop:{reason}" if occurrence[key] == 0 else f"drop:{reason}#{occurrence[key]}"
        occurrence[key] += 1
        spans.append(
            Span(
                _span_id(task, f"r{round_index}", f"d:{device}", suffix),
                round_span_ids.get((task, round_index)),
                f"{reason} drop",
                "ingest_drop",
                time,
                time,
                {"task": task, "round": round_index, "device": device, "reason": reason},
            )
        )

    # -- DeviceFlow shelve → delivery -----------------------------------
    deliveries: dict[tuple[str, str, int], list[float]] = defaultdict(list)
    for task, device, round_index, time in sorted(tracer.flow_deliveries):
        deliveries[(task, device, round_index)].append(time)
    submit_occurrence: dict[tuple, int] = defaultdict(int)
    for task, device, round_index, time in sorted(tracer.flow_submits):
        key = (task, device, round_index)
        position = submit_occurrence[key]
        submit_occurrence[key] += 1
        times = deliveries.get(key, [])
        delivered = position < len(times)
        end = times[position] if delivered else time
        device_id = _span_id(task, f"r{round_index}", f"d:{device}")
        parent = device_id if device_id in device_span_ids else None
        suffix = "flow" if position == 0 else f"flow#{position}"
        spans.append(
            Span(
                _span_id(task, f"r{round_index}", f"d:{device}", suffix),
                parent,
                "flow",
                "flow",
                time,
                end,
                {
                    "task": task,
                    "round": round_index,
                    "device": device,
                    "status": "delivered" if delivered else "lost",
                },
            )
        )

    # -- benchmark-phone stages -----------------------------------------
    for task, serial, device, round_index, stage, start, end in sorted(tracer.bench_stages):
        spans.append(
            Span(
                _span_id(task, f"r{round_index}", f"bench:{serial}", stage),
                round_span_ids.get((task, round_index)),
                f"{serial} {stage}",
                "bench_stage",
                start,
                end,
                {
                    "task": task,
                    "round": round_index,
                    "device": device,
                    "serial": serial,
                    "stage": stage,
                },
            )
        )

    return Trace(name, spans)
