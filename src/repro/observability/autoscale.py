"""Alarm-driven autoscaling: closing the remediation loop in-simulation.

An :class:`AutoscaleSpec` names an alarm rule; the live
:class:`AutoscalePolicy` subscribes to the monitor stream and reacts to
that rule's ``alarm_raised`` / ``alarm_cleared`` events by driving
:meth:`ResourceManager.scale_up` / :meth:`ResourceManager.scale_down`
and prodding :meth:`TaskManager.notify_resources_changed`, so queued
tasks grab the new capacity on the same simulated tick.

Every action runs as its *own* kernel event (``sim.schedule(0.0, ...)``)
rather than inside the monitor callback that observed the alarm: the
alarm may fire mid-scheduling-pass, and mutating the cluster under a
scheduler decision that was planned against the previous capacity
snapshot would corrupt the pass.  Deferred actions preserve determinism —
same-timestamp events fire in scheduling order on both the batched and
legacy loops — and keep the whole loop replayable.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass
from typing import TYPE_CHECKING

from repro.cluster.resources import NodeSpec

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.cloud.monitor import Monitor, MonitorEvent
    from repro.scheduler.resource_manager import ResourceManager
    from repro.scheduler.task_manager import TaskManager


@dataclass
class AutoscaleSpec:
    """Declarative autoscaling policy bound to one alarm rule.

    Attributes
    ----------
    alarm:
        Name of the :class:`~repro.observability.alarms.AlarmRule` whose
        raise/clear transitions drive scaling.
    node_cpus / node_memory_gb:
        Shape of the nodes the policy adds (defaults to the paper's
        20-core/30-GB worker).
    step:
        Nodes added per scale-up action.
    max_extra_nodes:
        Hard cap on policy-added nodes alive at once.
    cooldown_s:
        Minimum simulated seconds between scale-up actions.  While the
        alarm stays raised the policy re-checks every cooldown and adds
        another ``step`` until the cap (escalating remediation).
    scale_down_on_clear:
        Drain policy-added nodes once the alarm clears (busy nodes are
        retried as their tasks complete).
    """

    alarm: str
    node_cpus: float = 20.0
    node_memory_gb: float = 30.0
    step: int = 1
    max_extra_nodes: int = 4
    cooldown_s: float = 120.0
    scale_down_on_clear: bool = True

    def __post_init__(self) -> None:
        if not self.alarm:
            raise ValueError("autoscale policy needs an alarm rule name")
        if self.node_cpus <= 0 or self.node_memory_gb <= 0:
            raise ValueError("autoscale node shape must be positive")
        if self.step < 1:
            raise ValueError("autoscale step must be >= 1")
        if self.max_extra_nodes < 1:
            raise ValueError("max_extra_nodes must be >= 1")
        if self.cooldown_s < 0:
            raise ValueError("cooldown_s must be >= 0")

    def node_spec(self) -> NodeSpec:
        return NodeSpec(cpus=self.node_cpus, memory_gb=self.node_memory_gb)

    def to_dict(self) -> dict:
        return asdict(self)

    @classmethod
    def from_dict(cls, data: dict) -> AutoscaleSpec:
        return cls(**data)


class AutoscalePolicy:
    """Live remediation loop: alarm events in, scaling actions out."""

    def __init__(
        self,
        spec: AutoscaleSpec,
        monitor: Monitor,
        resource_manager: ResourceManager,
        task_manager: TaskManager,
    ) -> None:
        self.spec = spec
        self.monitor = monitor
        self.sim = monitor.sim
        self.resource_manager = resource_manager
        self.task_manager = task_manager
        #: Node ids this policy added and has not yet drained.
        self.added_nodes: list[str] = []
        self.scale_ups = 0
        self.scale_downs = 0
        self._alarm_active = False
        self._last_up_at: float | None = None
        self._up_pending = False
        self._down_pending = False
        monitor.subscribe(self._on_event)

    # ------------------------------------------------------------------
    def _on_event(self, event: MonitorEvent) -> None:
        kind = event.kind
        if kind == "alarm_raised" and event.fields.get("alarm") == self.spec.alarm:
            self._alarm_active = True
            self._request_scale_up()
        elif kind == "alarm_cleared" and event.fields.get("alarm") == self.spec.alarm:
            self._alarm_active = False
            if self.spec.scale_down_on_clear:
                self._request_scale_down()
        elif (
            kind in ("task_completed", "task_failed")
            and self.added_nodes
            and not self._alarm_active
            and self.spec.scale_down_on_clear
        ):
            # A finished task may have freed a policy node we still owe.
            self._request_scale_down()

    # ------------------------------------------------------------------
    def _request_scale_up(self) -> None:
        if self._up_pending or len(self.added_nodes) >= self.spec.max_extra_nodes:
            return
        self._up_pending = True
        now = self.sim.now
        in_cooldown = self._last_up_at is not None and now - self._last_up_at < self.spec.cooldown_s
        delay = self._last_up_at + self.spec.cooldown_s - now if in_cooldown else 0.0
        self.sim.schedule(delay, self._scale_up)

    def _scale_up(self) -> None:
        self._up_pending = False
        if not self._alarm_active or len(self.added_nodes) >= self.spec.max_extra_nodes:
            return
        count = min(self.spec.step, self.spec.max_extra_nodes - len(self.added_nodes))
        node_ids = self.resource_manager.scale_up(self.spec.node_spec(), count)
        self.added_nodes.extend(node_ids)
        self.scale_ups += 1
        self._last_up_at = self.sim.now
        self.monitor.log(
            "autoscale_up",
            alarm=self.spec.alarm,
            nodes=list(node_ids),
            extra_nodes=len(self.added_nodes),
        )
        self.task_manager.notify_resources_changed()
        # Escalate while the alarm stays raised: re-check after cooldown.
        if len(self.added_nodes) < self.spec.max_extra_nodes:
            self._up_pending = True
            self.sim.schedule(max(self.spec.cooldown_s, 1e-9), self._recheck_up)

    def _recheck_up(self) -> None:
        self._up_pending = False
        if self._alarm_active:
            self._request_scale_up()

    # ------------------------------------------------------------------
    def _request_scale_down(self) -> None:
        if self._down_pending or not self.added_nodes:
            return
        self._down_pending = True
        self.sim.schedule(0.0, self._scale_down)

    def _scale_down(self) -> None:
        self._down_pending = False
        if self._alarm_active or not self.added_nodes:
            return
        nodes = self.resource_manager.cluster.nodes
        idle = [nid for nid in self.added_nodes if nid in nodes and nodes[nid].idle]
        if not idle:
            return
        self.resource_manager.scale_down(idle)
        drained = set(idle)
        self.added_nodes = [nid for nid in self.added_nodes if nid not in drained]
        self.scale_downs += 1
        self.monitor.log(
            "autoscale_down",
            alarm=self.spec.alarm,
            nodes=idle,
            extra_nodes=len(self.added_nodes),
        )

    # ------------------------------------------------------------------
    def summary(self) -> dict:
        """Plain-data action totals for the scenario report."""
        return {
            "alarm": self.spec.alarm,
            "scale_ups": self.scale_ups,
            "scale_downs": self.scale_downs,
            "extra_nodes_left": len(self.added_nodes),
        }
