"""Live observability: streaming alarms, SLA assertions, autoscaling.

The platform's :class:`~repro.cloud.monitor.Monitor` records every task,
round and fault event with a per-kind index; this package watches that
stream *while the simulation runs*:

* :class:`AlarmRule` / :class:`AlarmEngine` — threshold alarms with
  warn/critical severities, a hysteresis clear band and a minimum hold
  time, evaluated from kernel events and logged back onto the monitor as
  ``alarm_raised`` / ``alarm_cleared`` events;
* :class:`SLASpec` — declarative service-level objectives (e.g.
  ``queue_wait_p95 <= 150``) checked live (``sla_violation`` events) and
  against the final per-tenant KPI report;
* :class:`AutoscaleSpec` / :class:`AutoscalePolicy` — alarms driving
  :meth:`ResourceManager.scale_up` / :meth:`~ResourceManager.scale_down`
  plus a scheduler prod, closing the remediation loop inside the run.

Everything lives on the simulated clock, so alarm histories, SLA
verdicts and scaling actions are deterministic and bit-identical between
the batched and legacy event loops.

PR 10 adds the *post-hoc* observability layer:

* :class:`Tracer` / :func:`assemble_trace` — deterministic per-task span
  trees (submit → queue → dispatch → device waves → transport → ingest →
  fold) with Chrome/Perfetto and JSONL exporters
  (:mod:`repro.observability.export`);
* :class:`RunProfiler` — real wall-clock accounting per simulator
  subsystem, behind ``python -m repro.scenarios run --profile``.
"""

from repro.observability.alarms import (
    GAUGE_SIGNALS,
    SERIES_SIGNALS,
    SEVERITIES,
    AlarmEngine,
    AlarmRule,
    signal_exists,
)
from repro.observability.autoscale import AutoscalePolicy, AutoscaleSpec
from repro.observability.export import (
    chrome_trace,
    spans_jsonl,
    write_chrome_trace,
    write_spans_jsonl,
)
from repro.observability.profiler import PROFILE_POINTS, HotspotRow, RunProfiler
from repro.observability.sla import (
    SLASpec,
    attach_live_slas,
    evaluate_slas,
    known_metrics,
    metric_value,
)
from repro.observability.tracing import (
    SPAN_KINDS,
    Span,
    Trace,
    Tracer,
    assemble_trace,
)

__all__ = [
    "GAUGE_SIGNALS",
    "PROFILE_POINTS",
    "SERIES_SIGNALS",
    "SEVERITIES",
    "SPAN_KINDS",
    "AlarmEngine",
    "AlarmRule",
    "AutoscalePolicy",
    "AutoscaleSpec",
    "HotspotRow",
    "RunProfiler",
    "SLASpec",
    "Span",
    "Trace",
    "Tracer",
    "assemble_trace",
    "attach_live_slas",
    "chrome_trace",
    "evaluate_slas",
    "known_metrics",
    "metric_value",
    "signal_exists",
    "spans_jsonl",
    "write_chrome_trace",
    "write_spans_jsonl",
]
