"""Streaming threshold alarms over the platform monitor.

The :class:`~repro.cloud.monitor.Monitor` already indexes every platform
event as it arrives; this module turns that stream into a live alerting
surface.  An :class:`AlarmRule` is plain data (dict round-trip like every
scenario spec): a KPI *signal*, warn/critical thresholds, a hysteresis
clear level and a minimum hold duration.  The :class:`AlarmEngine`
subscribes to the monitor, maintains the streaming signals the rules read
(queue depth, queue-wait percentiles over a sliding window, per-round
dropout loss, ...) and emits ``alarm_raised`` / ``alarm_cleared`` events
back onto the same monitor, so alarms live on the simulated clock and are
exactly as deterministic as the run itself — the batched and legacy event
loops produce the same event sequence, hence byte-identical alarm
histories.

Evaluation is event-driven: rules are (re)checked when a signal actually
changes, plus at scheduled hold-expiry instants, never on a wall-clock
poller.  That keeps the overhead proportional to the *monitor* event rate
(tasks and rounds, not devices) and keeps ``run_until_idle`` terminating:
every engine-scheduled kernel event is one-shot.
"""

from __future__ import annotations

import math

from dataclasses import asdict, dataclass, field
from collections.abc import Callable, Iterable, Sequence
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.cloud.monitor import Monitor, MonitorEvent

#: Gauge signals the engine maintains from the task lifecycle events.
GAUGE_SIGNALS = ("queue_depth", "running_tasks")

#: Sliding-window sample series (suffix one of ``_mean/_p50/_p95/_max``;
#: the bare name reads as the windowed mean).
SERIES_SIGNALS = (
    "queue_wait",
    "dropout_loss_rate",
    "round_updates",
    "retry_rate",
    "duplicate_drop_rate",
    "round_completeness",
)

_STAT_SUFFIXES = ("_mean", "_p50", "_p95", "_max")

#: Alarm severity levels, least to most severe.
SEVERITIES = ("ok", "warning", "critical")


def signal_exists(signal: str) -> bool:
    """Whether ``signal`` names a built-in gauge or series statistic."""
    if signal in GAUGE_SIGNALS or signal in SERIES_SIGNALS:
        return True
    for suffix in _STAT_SUFFIXES:
        if signal.endswith(suffix) and signal[: -len(suffix)] in SERIES_SIGNALS:
            return True
    return False


def _quantile(values: list[float], q: float) -> float:
    """Linear-interpolation quantile (numpy's default method) of a
    non-empty list, without the array-conversion overhead."""
    ordered = sorted(values)
    position = q * (len(ordered) - 1)
    lo = int(position)
    frac = position - lo
    if frac == 0.0:
        return ordered[lo]
    return ordered[lo] + (ordered[lo + 1] - ordered[lo]) * frac


def _base_signal(signal: str) -> str:
    """The underlying signal a rule reads: gauges and raw series names
    pass through; series statistics drop their ``_mean``-style suffix."""
    if signal in GAUGE_SIGNALS:
        return signal
    for suffix in _STAT_SUFFIXES:
        if signal.endswith(suffix):
            return signal[: -len(suffix)]
    return signal


@dataclass
class AlarmRule:
    """One threshold alarm: a KPI signal watched with hysteresis.

    Attributes
    ----------
    name:
        Unique rule id (appears in ``alarm_raised`` / ``alarm_cleared``
        events and the scenario report).
    signal:
        The streaming signal to watch: a gauge (``queue_depth``,
        ``running_tasks``), a windowed series statistic
        (``queue_wait_p95``, ``dropout_loss_rate_mean``, ...), or a
        custom signal fed via :meth:`AlarmEngine.ingest_sample`.
    warn / critical:
        Severity thresholds.  With ``direction="above"`` the alarm enters
        ``warning`` at ``value >= warn`` and ``critical`` at
        ``value >= critical``; ``"below"`` mirrors the comparisons.
    clear:
        Hysteresis level: once raised, the alarm only clears at
        ``value <= clear`` (``"above"``; mirrored for ``"below"``).
        Values strictly inside the ``(clear, warn)`` band hold the
        current state — no raise/clear chatter.  Defaults to ``warn``.
    window_s:
        Sliding-window length for series statistics.
    min_hold_s:
        A state change must hold continuously this long before it takes
        effect (the engine schedules the confirmation on the kernel).
    tenant:
        Restrict the signal to one tenant's events (scenario runs wire a
        task-to-tenant scope); empty watches the whole platform.
    """

    name: str
    signal: str
    warn: float
    critical: float | None = None
    clear: float | None = None
    direction: str = "above"
    window_s: float = 300.0
    min_hold_s: float = 0.0
    tenant: str = ""

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("alarm rule name must be non-empty")
        if not self.signal:
            raise ValueError(f"alarm rule {self.name!r} needs a signal")
        if self.direction not in ("above", "below"):
            raise ValueError(f"unknown alarm direction {self.direction!r}")
        if self.window_s <= 0:
            raise ValueError("window_s must be positive")
        if self.min_hold_s < 0:
            raise ValueError("min_hold_s must be >= 0")
        sign = 1.0 if self.direction == "above" else -1.0
        if self.critical is not None and sign * (self.critical - self.warn) < 0:
            raise ValueError(
                f"alarm {self.name!r}: critical must be at least as severe as warn"
            )
        if self.clear is not None and sign * (self.warn - self.clear) < 0:
            raise ValueError(
                f"alarm {self.name!r}: clear must sit on the healthy side of warn"
            )

    @property
    def clear_level(self) -> float:
        """The effective hysteresis clear threshold."""
        return self.warn if self.clear is None else self.clear

    def target_state(self, value: float) -> str | None:
        """The state ``value`` argues for, or ``None`` inside the band.

        ``None`` means "hold whatever state the alarm is in" — the value
        sits strictly between the clear level and the warn threshold.
        """
        sign = 1.0 if self.direction == "above" else -1.0
        if self.critical is not None and sign * (value - self.critical) >= 0:
            return "critical"
        if sign * (value - self.warn) >= 0:
            return "warning"
        if sign * (self.clear_level - value) >= 0:
            return "ok"
        return None

    def to_dict(self) -> dict:
        return asdict(self)

    @classmethod
    def from_dict(cls, data: dict) -> AlarmRule:
        return cls(**data)


class _Series:
    """One sliding-window sample series (parallel time/value lists)."""

    __slots__ = ("times", "values", "max_window")

    def __init__(self, max_window: float) -> None:
        self.times: list[float] = []
        self.values: list[float] = []
        self.max_window = max_window

    def append(self, time: float, value: float) -> None:
        self.times.append(time)
        self.values.append(float(value))
        # Amortized prune against the widest window any rule reads.
        cutoff = time - self.max_window
        if self.times and self.times[0] < cutoff:
            keep = 0
            while keep < len(self.times) and self.times[keep] < cutoff:
                keep += 1
            del self.times[:keep]
            del self.values[:keep]

    def stat(self, stat: str, now: float, window: float) -> float | None:
        """A windowed statistic, or ``None`` when the window is empty.

        Pure Python on the (pruned, usually tiny) window: the engine
        evaluates per monitor event, where numpy's per-call overhead
        would dominate the actual arithmetic.
        """
        cutoff = now - window
        start = 0
        times = self.times
        while start < len(times) and times[start] < cutoff:
            start += 1
        if start >= len(times):
            return None
        window_values = self.values[start:]
        if stat == "mean":
            return math.fsum(window_values) / len(window_values)
        if stat == "max":
            return max(window_values)
        if stat == "p50":
            return _quantile(window_values, 0.5)
        if stat == "p95":
            return _quantile(window_values, 0.95)
        raise ValueError(f"unknown series statistic {stat!r}")


class _Scope:
    """Signal storage for one tenant scope ('' = platform-wide)."""

    __slots__ = ("gauges", "series")

    def __init__(self) -> None:
        self.gauges: dict[str, float] = {}
        self.series: dict[str, _Series] = {}


class _RuleRuntime:
    """Mutable evaluation state for one armed rule."""

    __slots__ = (
        "rule", "raised_kind", "cleared_kind", "state",
        "pending", "pending_since", "raised", "cleared",
    )

    def __init__(self, rule: AlarmRule, raised_kind: str, cleared_kind: str) -> None:
        self.rule = rule
        self.raised_kind = raised_kind
        self.cleared_kind = cleared_kind
        self.state = "ok"
        self.pending: str | None = None
        self.pending_since = 0.0
        self.raised = 0
        self.cleared = 0


class AlarmEngine:
    """Evaluates alarm rules against the live monitor event stream.

    Parameters
    ----------
    monitor:
        The platform monitor.  The engine subscribes for signal updates
        and logs its ``alarm_*`` events back onto it.
    rules:
        Initial rule set (more can be added via :meth:`add_rule`).
    scope_of:
        Optional ``task_id -> tenant`` mapping; when provided, signals
        are additionally tracked per tenant so rules with a ``tenant``
        field see only that tenant's events.
    """

    #: Default sample-window ceiling when a custom signal has no rule yet.
    DEFAULT_WINDOW_S = 3600.0

    def __init__(
        self,
        monitor: Monitor,
        rules: Iterable[AlarmRule] = (),
        scope_of: Callable[[str], str] | None = None,
    ) -> None:
        self.monitor = monitor
        self.sim = monitor.sim
        self.scope_of = scope_of
        self._rules: dict[str, _RuleRuntime] = {}
        self._scopes: dict[str, _Scope] = {"": _Scope()}
        self._submit_times: dict[str, float] = {}
        #: (rule scope, base signal) -> runtimes watching it.  Events only
        #: re-evaluate the rules whose signal they touched, so arming N
        #: rules costs O(rules-per-signal) per event, not O(N).
        self._watchers: dict[tuple[str, str], list[_RuleRuntime]] = {}
        for rule in rules:
            self.add_rule(rule)
        monitor.subscribe(self._on_event)

    # ------------------------------------------------------------------
    # rule management / inspection
    # ------------------------------------------------------------------
    def add_rule(
        self,
        rule: AlarmRule,
        raised_kind: str = "alarm_raised",
        cleared_kind: str = "alarm_cleared",
    ) -> AlarmRule:
        """Arm a rule; the event kinds are overridable (SLA watches use
        ``sla_violation`` / ``sla_recovered``)."""
        if rule.name in self._rules:
            raise ValueError(f"duplicate alarm rule {rule.name!r}")
        runtime = _RuleRuntime(rule, raised_kind, cleared_kind)
        self._rules[rule.name] = runtime
        self._watchers.setdefault((rule.tenant, _base_signal(rule.signal)), []).append(runtime)
        return rule

    @property
    def rules(self) -> list[AlarmRule]:
        """The armed rules, in arming order."""
        return [rt.rule for rt in self._rules.values()]

    def state_of(self, name: str) -> str:
        """Current state of one rule: ``ok`` / ``warning`` / ``critical``."""
        return self._rules[name].state

    def active_alarms(self) -> dict[str, str]:
        """Rule name -> severity for every currently raised alarm."""
        return {name: rt.state for name, rt in self._rules.items() if rt.state != "ok"}

    def summary(self) -> dict[str, dict]:
        """Per-rule raise/clear counts and final state (report material)."""
        return {
            name: {"raised": rt.raised, "cleared": rt.cleared, "state": rt.state}
            for name, rt in sorted(self._rules.items())
        }

    # ------------------------------------------------------------------
    # signal plumbing
    # ------------------------------------------------------------------
    def _scope(self, tenant: str) -> _Scope:
        scope = self._scopes.get(tenant)
        if scope is None:
            scope = self._scopes[tenant] = _Scope()
        return scope

    def _max_window(self, base: str) -> float:
        windows = [
            rt.rule.window_s
            for rt in self._rules.values()
            if rt.rule.signal == base or rt.rule.signal.startswith(base + "_")
        ]
        return max(windows, default=self.DEFAULT_WINDOW_S)

    def _bump(self, tenant: str, gauge: str, delta: float) -> None:
        for key in {"", tenant}:
            gauges = self._scope(key).gauges
            gauges[gauge] = gauges.get(gauge, 0.0) + delta

    def ingest_sample(self, signal: str, value: float, tenant: str = "") -> None:
        """Feed one sample of a custom (or built-in) series signal.

        The sample lands in the platform-wide scope and, when ``tenant``
        is non-empty, that tenant's scope too; the rules watching that
        signal are then re-evaluated at the current simulated time.
        """
        for key in {"", tenant}:
            scope = self._scope(key)
            series = scope.series.get(signal)
            if series is None:
                series = scope.series[signal] = _Series(self._max_window(signal))
            series.append(self.sim.now, value)
        self._evaluate_touched(tenant, (signal,))

    def value_of(self, rule: AlarmRule) -> float | None:
        """The rule's current signal value (``None`` = no data yet)."""
        scope = self._scope(rule.tenant)
        signal = rule.signal
        if signal in scope.gauges or signal in GAUGE_SIGNALS:
            return scope.gauges.get(signal, 0.0)
        base, stat = signal, "mean"
        for suffix in _STAT_SUFFIXES:
            if signal.endswith(suffix):
                base, stat = signal[: -len(suffix)], suffix[1:]
                break
        series = scope.series.get(base)
        if series is None:
            return None
        return series.stat(stat, self.sim.now, rule.window_s)

    # ------------------------------------------------------------------
    # event consumption
    # ------------------------------------------------------------------
    def _tenant_of(self, fields: dict) -> str:
        if self.scope_of is None:
            return ""
        task_id = fields.get("task_id")
        return self.scope_of(task_id) if task_id else ""

    def _on_event(self, event: MonitorEvent) -> None:
        kind = event.kind
        fields = event.fields
        if kind == "task_submitted":
            tenant = self._tenant_of(fields)
            self._submit_times[fields["task_id"]] = event.time
            self._bump(tenant, "queue_depth", 1.0)
            touched: tuple[str, ...] = ("queue_depth",)
        elif kind == "task_scheduled":
            tenant = self._tenant_of(fields)
            self._bump(tenant, "queue_depth", -1.0)
            self._bump(tenant, "running_tasks", 1.0)
            submitted = self._submit_times.pop(fields["task_id"], event.time)
            self._record(tenant, "queue_wait", event.time - submitted)
            touched = ("queue_depth", "running_tasks", "queue_wait")
        elif kind in ("task_completed", "task_failed"):
            tenant = self._tenant_of(fields)
            self._bump(tenant, "running_tasks", -1.0)
            touched = ("running_tasks",)
        elif kind == "round_aggregated":
            tenant = self._tenant_of(fields)
            n_updates = float(fields.get("n_updates", 0))
            self._record(tenant, "round_updates", n_updates)
            touched = ("round_updates",)
            expected = fields.get("n_devices")
            if expected:
                loss = 1.0 - n_updates / float(expected)
                self._record(tenant, "dropout_loss_rate", loss)
                touched = ("round_updates", "dropout_loss_rate")
        elif kind == "transport_round":
            tenant = self._tenant_of(fields)
            touched_list = []
            uploads = float(fields.get("uploads", 0) or 0)
            if uploads > 0:
                self._record(tenant, "retry_rate", float(fields.get("retries", 0)) / uploads)
                self._record(
                    tenant, "duplicate_drop_rate", float(fields.get("duplicates", 0)) / uploads
                )
                touched_list += ["retry_rate", "duplicate_drop_rate"]
            expected = float(fields.get("expected", 0) or 0)
            if expected > 0:
                self._record(
                    tenant, "round_completeness", float(fields.get("delivered", 0)) / expected
                )
                touched_list.append("round_completeness")
            if not touched_list:
                return
            touched = tuple(touched_list)
        else:
            # Alarm/SLA/autoscale events and everything else: no signal
            # change, so no evaluation (and no log->evaluate recursion).
            return
        self._evaluate_touched(tenant, touched)

    def _record(self, tenant: str, base: str, value: float) -> None:
        for key in {"", tenant}:
            scope = self._scope(key)
            series = scope.series.get(base)
            if series is None:
                series = scope.series[base] = _Series(self._max_window(base))
            series.append(self.sim.now, value)

    # ------------------------------------------------------------------
    # evaluation
    # ------------------------------------------------------------------
    def _evaluate_touched(self, tenant: str, bases: tuple[str, ...]) -> None:
        """Re-evaluate the rules watching the signals an event changed.

        A rule is (re)checked when its own signal receives data, when its
        min-hold confirmation fires, or — for windowed statistics — the
        next time either happens after old samples age out; stale decay
        alone never wakes a rule.
        """
        watchers = self._watchers
        for scope_key in {"", tenant}:
            for base in bases:
                for runtime in watchers.get((scope_key, base), ()):
                    self._evaluate(runtime)

    def _evaluate(self, runtime: _RuleRuntime) -> None:
        rule = runtime.rule
        value = self.value_of(rule)
        if value is None:
            return
        target = rule.target_state(value)
        if target is None or target == runtime.state:
            runtime.pending = None
            return
        now = self.sim.now
        if rule.min_hold_s > 0.0:
            if runtime.pending != target:
                runtime.pending = target
                runtime.pending_since = now
                # Confirm exactly when the hold expires (one-shot event;
                # re-evaluates with whatever the signal reads then).
                self.sim.schedule(rule.min_hold_s, self._check_rule, rule.name)
                return
            if now - runtime.pending_since < rule.min_hold_s:
                return
        self._transition(runtime, target, value)

    def _check_rule(self, name: str) -> None:
        runtime = self._rules.get(name)
        if runtime is not None:
            self._evaluate(runtime)

    def _transition(self, runtime: _RuleRuntime, target: str, value: float) -> None:
        rule = runtime.rule
        previous, runtime.state = runtime.state, target
        runtime.pending = None
        if target == "ok":
            runtime.cleared += 1
            self.monitor.log(
                runtime.cleared_kind,
                alarm=rule.name, signal=rule.signal, value=value,
                previous=previous, tenant=rule.tenant,
            )
        else:
            runtime.raised += 1
            self.monitor.log(
                runtime.raised_kind,
                alarm=rule.name, severity=target, signal=rule.signal,
                value=value, previous=previous, tenant=rule.tenant,
            )


__all__: Sequence[str] = (
    "AlarmEngine",
    "AlarmRule",
    "GAUGE_SIGNALS",
    "SERIES_SIGNALS",
    "SEVERITIES",
    "signal_exists",
)
