"""Trace exporters: Chrome trace-event (Perfetto-loadable) JSON + JSONL.

Two serializations of one :class:`~repro.observability.tracing.Trace`:

* :func:`chrome_trace` / :func:`write_chrome_trace` — the Chrome
  trace-event format (``{"traceEvents": [...]}``) that both
  ``chrome://tracing`` and https://ui.perfetto.dev open directly.  Each
  task becomes a *process* (pid) and each device a *thread* (tid) inside
  it, so the timeline reads as "task lanes containing device lanes";
  task-level spans (queue wait, dispatch, rounds, waves, aggregation)
  ride on a dedicated lifecycle lane (tid 0).  Durations use ``"ph":
  "X"`` complete events; ingest drops and aggregation folds render as
  instants.  Timestamps are simulated seconds scaled to the format's
  microseconds.
* :func:`spans_jsonl` / :func:`write_spans_jsonl` — one span per line as
  sorted-key JSON, the archival/diffable form (byte-identical across
  runs for byte-identical traces).

Both renderings are deterministic: ordering comes from the trace's own
``(start, span_id)`` sort plus sorted pid/tid assignment, never from
dict iteration over runtime state.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import TYPE_CHECKING, Any

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.observability.tracing import Span, Trace

#: Span kinds rendered as zero-duration instant events ("ph": "i").
_INSTANT_KINDS = frozenset({"ingest_drop", "aggregate"})

#: Scale from simulated seconds to trace-event microseconds.
_US = 1_000_000.0


def _task_of(span: Span) -> str:
    return str(span.attrs.get("task", span.span_id.split("/", 1)[0].removeprefix("t:")))


def _device_of(span: Span) -> str | None:
    device = span.attrs.get("device")
    return None if device is None else str(device)


def chrome_trace(trace: Trace) -> dict[str, Any]:
    """Render a trace as a Chrome trace-event / Perfetto JSON object."""
    tasks = sorted({_task_of(span) for span in trace.spans})
    pid_of = {task: index + 1 for index, task in enumerate(tasks)}
    lanes = sorted(
        {
            (_task_of(span), _device_of(span))
            for span in trace.spans
            if _device_of(span) is not None
        }
    )
    tid_of: dict[tuple[str, str], int] = {}
    next_tid: dict[str, int] = {}
    for task, device in lanes:
        tid_of[(task, device)] = next_tid.get(task, 1)
        next_tid[task] = tid_of[(task, device)] + 1

    events: list[dict[str, Any]] = []
    for task in tasks:
        events.append(
            {
                "name": "process_name",
                "ph": "M",
                "pid": pid_of[task],
                "tid": 0,
                "args": {"name": f"task {task}"},
            }
        )
        events.append(
            {
                "name": "thread_name",
                "ph": "M",
                "pid": pid_of[task],
                "tid": 0,
                "args": {"name": "lifecycle"},
            }
        )
    for task, device in lanes:
        events.append(
            {
                "name": "thread_name",
                "ph": "M",
                "pid": pid_of[task],
                "tid": tid_of[(task, device)],
                "args": {"name": device},
            }
        )

    for span in trace.spans:
        task = _task_of(span)
        device = _device_of(span)
        tid = tid_of[(task, device)] if device is not None else 0
        event: dict[str, Any] = {
            "name": span.name,
            "cat": span.kind,
            "pid": pid_of[task],
            "tid": tid,
            "ts": span.start * _US,
            "args": dict(sorted(span.attrs.items(), key=lambda kv: kv[0])),
        }
        if span.kind in _INSTANT_KINDS:
            event["ph"] = "i"
            event["s"] = "t"
        else:
            event["ph"] = "X"
            event["dur"] = span.duration * _US
        events.append(event)
    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {"trace_name": trace.name, "clock": "simulated"},
    }


def write_chrome_trace(trace: Trace, path: str | Path) -> Path:
    """Write the Perfetto-loadable JSON; returns the path written."""
    path = Path(path)
    path.write_text(
        json.dumps(chrome_trace(trace), sort_keys=True, separators=(",", ":")) + "\n",
        encoding="utf-8",
    )
    return path


def spans_jsonl(trace: Trace) -> str:
    """One sorted-key JSON object per span, one span per line."""
    return "\n".join(
        json.dumps(span.to_dict(), sort_keys=True, separators=(",", ":"))
        for span in trace.spans
    )


def write_spans_jsonl(trace: Trace, path: str | Path) -> Path:
    """Write the JSONL span dump; returns the path written."""
    path = Path(path)
    text = spans_jsonl(trace)
    path.write_text(text + "\n" if text else "", encoding="utf-8")
    return path


def read_spans_jsonl(path: str | Path) -> list[dict[str, Any]]:
    """Parse a JSONL span dump back into span dicts (archival round-trip)."""
    lines = Path(path).read_text(encoding="utf-8").splitlines()
    return [json.loads(line) for line in lines if line.strip()]
