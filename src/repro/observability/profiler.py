"""RunProfiler: wall-clock accounting per simulator subsystem.

The ROADMAP's next scaling steps (whole-platform sharding, the 1M-device
milestone) need the *measured* bottleneck, not the guessed one.  This
profiler patches a fixed set of synchronous hot-path methods — kernel
stepping, wave scheduling, numeric block execution, transport routing,
cloud ingestion, aggregation folds, alarm evaluation — and accounts real
``perf_counter`` time to each, with *self time* (a method's elapsed time
minus the profiled calls it made) attributed via an enter/exit stack so
nested hooks (``step_batch`` → ``_route`` → ``accept``) never
double-count.

Patching is class-level, so one attached profiler observes every
instance created while it is active — attach *before* building the
platform, detach (or use the context manager) when done.  Detaching
restores the original functions exactly; nothing in this module runs
when no profiler is attached, keeping the zero-cost-when-off contract.

Usage::

    profiler = RunProfiler()
    with profiler:
        report = ScenarioRunner(spec).run()
    print(profiler.table())
"""

from __future__ import annotations

import functools
from collections.abc import Callable
from dataclasses import dataclass
from importlib import import_module
from time import perf_counter
from typing import Any

#: The profiled subsystem hooks: (module, class, method, category).
#: Every target is a plain synchronous method (never a generator — timing
#: a generator function would measure only its instantiation).
PROFILE_POINTS: tuple[tuple[str, str, str, str], ...] = (
    ("repro.simkernel.simulator", "Simulator", "step", "kernel.step"),
    ("repro.simkernel.simulator", "Simulator", "step_batch", "kernel.step_batch"),
    ("repro.cluster.runner", "LogicalSimulation", "_register_batched_plan", "logical.wave_schedule"),
    ("repro.cluster.runner", "LogicalSimulation", "_execute_numeric_waves", "logical.numeric_block"),
    ("repro.phones.phonemgr", "PhoneMgr", "_register_batched_plan", "phones.wave_schedule"),
    ("repro.phones.phonemgr", "PhoneMgr", "_sampler_tick", "phones.sampler"),
    ("repro.cloud.transport", "TransportChannel", "_route", "transport.route"),
    ("repro.cloud.sink", "CloudIngestSink", "accept", "cloud.ingest_scalar"),
    ("repro.cloud.sink", "CloudIngestSink", "accept_block", "cloud.ingest_block"),
    ("repro.cloud.aggregation", "AggregationService", "receive_message", "cloud.receive_message"),
    ("repro.cloud.aggregation", "AggregationService", "receive_block", "cloud.receive_block"),
    ("repro.cloud.aggregation", "AggregationService", "aggregate_now", "cloud.fold"),
    ("repro.observability.alarms", "AlarmEngine", "_on_event", "observability.alarms"),
)


@dataclass
class HotspotRow:
    """One subsystem's accumulated wall-clock accounting."""

    category: str
    calls: int
    total_s: float
    self_s: float

    def to_dict(self) -> dict[str, Any]:
        return {
            "category": self.category,
            "calls": self.calls,
            "total_s": self.total_s,
            "self_s": self.self_s,
        }


class RunProfiler:
    """Patch-based wall-clock profiler over :data:`PROFILE_POINTS`.

    Self-time semantics: when a profiled method calls another profiled
    method, the callee's elapsed time is subtracted from the caller's
    self time (the enter/exit stack carries child totals upward), so the
    ``self_s`` column sums to at most the run's wall clock and names the
    subsystem actually burning the time.
    """

    def __init__(self) -> None:
        #: category -> [calls, total_s, self_s]
        self._stats: dict[str, list[float]] = {}
        #: live call stack: [category, accumulated_child_seconds]
        self._stack: list[list] = []
        self._originals: list[tuple[type, str, Callable]] = []
        self._sections: dict[str, list[float]] = {}

    @property
    def attached(self) -> bool:
        return bool(self._originals)

    # ------------------------------------------------------------------
    def _wrap(self, func: Callable, category: str) -> Callable:
        profiler = self

        @functools.wraps(func)
        def wrapper(*args, **kwargs):
            stack = profiler._stack
            stack.append([category, 0.0])
            start = perf_counter()
            try:
                return func(*args, **kwargs)
            finally:
                elapsed = perf_counter() - start
                frame = stack.pop()
                record = profiler._stats.setdefault(category, [0, 0.0, 0.0])
                record[0] += 1
                record[1] += elapsed
                record[2] += elapsed - frame[1]
                if stack:
                    stack[-1][1] += elapsed

        wrapper.__profiled_original__ = func
        return wrapper

    def attach(self) -> RunProfiler:
        """Patch every profile point; idempotence guarded."""
        if self._originals:
            raise RuntimeError("profiler is already attached")
        try:
            for module_name, class_name, method_name, category in PROFILE_POINTS:
                cls = getattr(import_module(module_name), class_name)
                original = getattr(cls, method_name)
                if hasattr(original, "__profiled_original__"):
                    raise RuntimeError(
                        f"{class_name}.{method_name} is already profiled "
                        f"(another RunProfiler is attached)"
                    )
                setattr(cls, method_name, self._wrap(original, category))
                self._originals.append((cls, method_name, original))
        except Exception:
            self.detach()
            raise
        return self

    def detach(self) -> None:
        """Restore every patched method (safe to call when detached)."""
        for cls, method_name, original in self._originals:
            setattr(cls, method_name, original)
        self._originals = []
        self._stack = []

    def __enter__(self) -> RunProfiler:
        return self.attach()

    def __exit__(self, *exc_info) -> None:
        self.detach()

    # ------------------------------------------------------------------
    def section(self, name: str):
        """Manually time a named non-patched block (e.g. report build)."""
        profiler = self

        class _Section:
            def __enter__(self) -> None:
                self._start = perf_counter()

            def __exit__(self, *exc_info) -> None:
                elapsed = perf_counter() - self._start
                record = profiler._sections.setdefault(name, [0, 0.0])
                record[0] += 1
                record[1] += elapsed

        return _Section()

    # ------------------------------------------------------------------
    def rows(self) -> list[HotspotRow]:
        """Hotspots ranked by self time, descending (ties by name)."""
        rows = [
            HotspotRow(category, int(calls), total, self_s)
            for category, (calls, total, self_s) in self._stats.items()
        ]
        for name, (calls, total) in self._sections.items():
            rows.append(HotspotRow(f"section.{name}", int(calls), total, total))
        rows.sort(key=lambda row: (-row.self_s, row.category))
        return rows

    def table(self, wall_s: float | None = None) -> str:
        """The ranked hotspot table as printable text."""
        rows = self.rows()
        accounted = sum(row.self_s for row in rows)
        total = wall_s if wall_s is not None else accounted
        lines = [
            f"{'#':>3} {'subsystem':<26} {'calls':>9} {'total s':>9} "
            f"{'self s':>9} {'self %':>7}"
        ]
        for rank, row in enumerate(rows, start=1):
            share = (row.self_s / total * 100.0) if total > 0 else 0.0
            lines.append(
                f"{rank:>3} {row.category:<26} {row.calls:>9} {row.total_s:>9.3f} "
                f"{row.self_s:>9.3f} {share:>6.1f}%"
            )
        lines.append(
            f"    {'accounted':<26} {'':>9} {'':>9} {accounted:>9.3f}"
            + (f" of {total:.3f}s wall" if wall_s is not None else "")
        )
        return "\n".join(lines)

    def to_dict(self) -> dict[str, Any]:
        return {"hotspots": [row.to_dict() for row in self.rows()]}
