"""SLA assertions: declarative service-level objectives for scenarios.

Modeled on production SLO practice (explicit p95/p99 latency targets with
signal-rich alerting): an :class:`SLASpec` binds one KPI metric to a
bound, per tenant or platform-wide.  SLAs are checked twice:

* **live** — metrics with a streaming counterpart (queue-wait
  percentiles, dropout loss rate, queue depth) are compiled onto the
  :class:`~repro.observability.alarms.AlarmEngine` as pure-threshold
  watches that log ``sla_violation`` / ``sla_recovered`` monitor events
  the moment the simulation crosses the bound, and
* **final** — every SLA is evaluated against the finished run's
  per-tenant KPIs; the verdicts are first-class rows in the scenario
  report and drive the CLI's ``--sla`` exit code.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass

from repro.observability.alarms import AlarmEngine, AlarmRule, signal_exists

#: Final-report metrics: ``<kpi>_<stat>`` over the StatSummary KPIs ...
_STAT_KPIS = ("queue_wait", "makespan", "turnaround", "round_duration")
_STATS = ("mean", "p50", "p95", "max")
#: ... plus derived scalar metrics.
_SCALAR_METRICS = (
    "dropout_loss_rate",
    "completion_rate",
    "failed_tasks",
    "final_accuracy",
    "retry_rate",
    "round_completeness",
)

#: Metrics that also exist as streaming signals for the live watch.
#: Live transport metrics read the bare series name (windowed mean);
#: their final-report counterparts normalize by ``updates_expected``, so
#: the two denominators differ slightly on partially-failed tenants.
_LIVE_METRICS = {
    "queue_depth": "queue_depth",
    "queue_wait_mean": "queue_wait_mean",
    "queue_wait_p50": "queue_wait_p50",
    "queue_wait_p95": "queue_wait_p95",
    "queue_wait_max": "queue_wait_max",
    "dropout_loss_rate": "dropout_loss_rate",
    "retry_rate": "retry_rate",
    "round_completeness": "round_completeness",
}


def known_metrics() -> list[str]:
    """Every metric name an SLA may reference."""
    names = [f"{kpi}_{stat}" for kpi in _STAT_KPIS for stat in _STATS]
    names.extend(_SCALAR_METRICS)
    names.append("queue_depth")
    return sorted(names)


@dataclass
class SLASpec:
    """One service-level objective: ``metric`` bounded by ``limit``.

    Attributes
    ----------
    metric:
        A KPI name from :func:`known_metrics` — e.g. ``queue_wait_p95``,
        ``dropout_loss_rate``, ``completion_rate``.
    limit:
        The bound.  With ``direction="max"`` the SLA holds while
        ``value <= limit``; ``"min"`` requires ``value >= limit``
        (completion rates, accuracies).
    tenant:
        Apply to one tenant only; empty applies to every tenant.
    live:
        Also watch the metric during the run where a streaming signal
        exists (``queue_depth`` and live-only watches never appear in
        the final report check when the KPI is absent).
    window_s:
        Sliding window for the live watch's series statistics.
    """

    metric: str
    limit: float
    tenant: str = ""
    direction: str = "max"
    live: bool = True
    window_s: float = 300.0

    def __post_init__(self) -> None:
        if self.direction not in ("max", "min"):
            raise ValueError(f"unknown SLA direction {self.direction!r}")
        if self.metric not in known_metrics():
            raise ValueError(
                f"unknown SLA metric {self.metric!r}; known: {known_metrics()}"
            )
        if self.window_s <= 0:
            raise ValueError("window_s must be positive")

    def holds(self, value: float | None) -> bool:
        """Whether ``value`` satisfies the objective (no data = holds)."""
        if value is None:
            return True
        if self.direction == "max":
            return value <= self.limit
        return value >= self.limit

    def live_rule(self) -> AlarmRule | None:
        """The streaming watch for this SLA, or ``None`` when not live.

        A pure threshold (clear == warn): SLA events mark bound
        crossings, operator alarms carry the hysteresis.
        """
        signal = _LIVE_METRICS.get(self.metric)
        if not self.live or signal is None:
            return None
        assert signal_exists(signal)
        bound = "<=" if self.direction == "max" else ">="
        return AlarmRule(
            name=f"sla:{self.tenant or '*'}:{self.metric}{bound}{self.limit:g}",
            signal=signal,
            warn=self.limit,
            direction="above" if self.direction == "max" else "below",
            window_s=self.window_s,
            tenant=self.tenant,
        )

    def to_dict(self) -> dict:
        return asdict(self)

    @classmethod
    def from_dict(cls, data: dict) -> SLASpec:
        return cls(**data)


def attach_live_slas(engine: AlarmEngine, slas: list[SLASpec]) -> int:
    """Arm every live-watchable SLA on ``engine``; returns the count."""
    armed = 0
    for sla in slas:
        rule = sla.live_rule()
        if rule is not None:
            engine.add_rule(rule, raised_kind="sla_violation", cleared_kind="sla_recovered")
            armed += 1
    return armed


def metric_value(kpis, metric: str) -> float | None:
    """Resolve a final-report metric from one tenant's KPIs.

    ``kpis`` is a :class:`~repro.scenarios.kpis.TenantKPIs` (duck-typed
    to keep this package independent of the scenarios layer).  Returns
    ``None`` when the metric has no data for this tenant (live-only
    metrics such as ``queue_depth``, or accuracy on time-only tenants).
    """
    for kpi in _STAT_KPIS:
        prefix = kpi + "_"
        if metric.startswith(prefix) and metric[len(prefix):] in _STATS:
            summary = getattr(kpis, kpi)
            if summary.n == 0:
                return None
            return float(getattr(summary, metric[len(prefix):]))
    if metric == "dropout_loss_rate":
        if kpis.updates_expected <= 0:
            return None
        return kpis.dropout_lost / kpis.updates_expected
    if metric == "completion_rate":
        if kpis.submitted <= 0:
            return None
        return kpis.completed / kpis.submitted
    if metric == "failed_tasks":
        return float(kpis.failed)
    if metric == "final_accuracy":
        return kpis.final_accuracy
    if metric == "retry_rate":
        if kpis.updates_expected <= 0:
            return None
        return kpis.transport_retries / kpis.updates_expected
    if metric == "round_completeness":
        if kpis.updates_expected <= 0:
            return None
        return kpis.updates_aggregated / kpis.updates_expected
    return None


def evaluate_slas(slas: list[SLASpec], tenants: dict) -> list[dict]:
    """Check every SLA against the per-tenant KPIs of a finished run.

    Returns deterministic plain-data rows sorted by (tenant, metric):
    ``{"tenant", "metric", "limit", "direction", "value", "ok"}``.
    An SLA with an empty ``tenant`` expands to one row per tenant.
    """
    rows = []
    for sla in slas:
        names = [sla.tenant] if sla.tenant else sorted(tenants)
        for name in names:
            kpis = tenants.get(name)
            if kpis is None:
                continue
            value = metric_value(kpis, sla.metric)
            rows.append(
                {
                    "tenant": name,
                    "metric": sla.metric,
                    "limit": sla.limit,
                    "direction": sla.direction,
                    "value": value,
                    "ok": sla.holds(value),
                }
            )
    rows.sort(key=lambda r: (r["tenant"], r["metric"], r["direction"], r["limit"]))
    return rows
